type t = { name : string; first : Cp.t; last : Cp.t }

(* Block ranges from the Unicode Character Database Blocks.txt
   (Unicode 15.0 repertoire). *)
let all =
  [|
    { first = 0x0000; last = 0x007F; name = "Basic Latin" };
    { first = 0x0080; last = 0x00FF; name = "Latin-1 Supplement" };
    { first = 0x0100; last = 0x017F; name = "Latin Extended-A" };
    { first = 0x0180; last = 0x024F; name = "Latin Extended-B" };
    { first = 0x0250; last = 0x02AF; name = "IPA Extensions" };
    { first = 0x02B0; last = 0x02FF; name = "Spacing Modifier Letters" };
    { first = 0x0300; last = 0x036F; name = "Combining Diacritical Marks" };
    { first = 0x0370; last = 0x03FF; name = "Greek and Coptic" };
    { first = 0x0400; last = 0x04FF; name = "Cyrillic" };
    { first = 0x0500; last = 0x052F; name = "Cyrillic Supplement" };
    { first = 0x0530; last = 0x058F; name = "Armenian" };
    { first = 0x0590; last = 0x05FF; name = "Hebrew" };
    { first = 0x0600; last = 0x06FF; name = "Arabic" };
    { first = 0x0700; last = 0x074F; name = "Syriac" };
    { first = 0x0750; last = 0x077F; name = "Arabic Supplement" };
    { first = 0x0780; last = 0x07BF; name = "Thaana" };
    { first = 0x07C0; last = 0x07FF; name = "NKo" };
    { first = 0x0800; last = 0x083F; name = "Samaritan" };
    { first = 0x0840; last = 0x085F; name = "Mandaic" };
    { first = 0x0860; last = 0x086F; name = "Syriac Supplement" };
    { first = 0x0870; last = 0x089F; name = "Arabic Extended-B" };
    { first = 0x08A0; last = 0x08FF; name = "Arabic Extended-A" };
    { first = 0x0900; last = 0x097F; name = "Devanagari" };
    { first = 0x0980; last = 0x09FF; name = "Bengali" };
    { first = 0x0A00; last = 0x0A7F; name = "Gurmukhi" };
    { first = 0x0A80; last = 0x0AFF; name = "Gujarati" };
    { first = 0x0B00; last = 0x0B7F; name = "Oriya" };
    { first = 0x0B80; last = 0x0BFF; name = "Tamil" };
    { first = 0x0C00; last = 0x0C7F; name = "Telugu" };
    { first = 0x0C80; last = 0x0CFF; name = "Kannada" };
    { first = 0x0D00; last = 0x0D7F; name = "Malayalam" };
    { first = 0x0D80; last = 0x0DFF; name = "Sinhala" };
    { first = 0x0E00; last = 0x0E7F; name = "Thai" };
    { first = 0x0E80; last = 0x0EFF; name = "Lao" };
    { first = 0x0F00; last = 0x0FFF; name = "Tibetan" };
    { first = 0x1000; last = 0x109F; name = "Myanmar" };
    { first = 0x10A0; last = 0x10FF; name = "Georgian" };
    { first = 0x1100; last = 0x11FF; name = "Hangul Jamo" };
    { first = 0x1200; last = 0x137F; name = "Ethiopic" };
    { first = 0x1380; last = 0x139F; name = "Ethiopic Supplement" };
    { first = 0x13A0; last = 0x13FF; name = "Cherokee" };
    { first = 0x1400; last = 0x167F; name = "Unified Canadian Aboriginal Syllabics" };
    { first = 0x1680; last = 0x169F; name = "Ogham" };
    { first = 0x16A0; last = 0x16FF; name = "Runic" };
    { first = 0x1700; last = 0x171F; name = "Tagalog" };
    { first = 0x1720; last = 0x173F; name = "Hanunoo" };
    { first = 0x1740; last = 0x175F; name = "Buhid" };
    { first = 0x1760; last = 0x177F; name = "Tagbanwa" };
    { first = 0x1780; last = 0x17FF; name = "Khmer" };
    { first = 0x1800; last = 0x18AF; name = "Mongolian" };
    { first = 0x18B0; last = 0x18FF; name = "Unified Canadian Aboriginal Syllabics Extended" };
    { first = 0x1900; last = 0x194F; name = "Limbu" };
    { first = 0x1950; last = 0x197F; name = "Tai Le" };
    { first = 0x1980; last = 0x19DF; name = "New Tai Lue" };
    { first = 0x19E0; last = 0x19FF; name = "Khmer Symbols" };
    { first = 0x1A00; last = 0x1A1F; name = "Buginese" };
    { first = 0x1A20; last = 0x1AAF; name = "Tai Tham" };
    { first = 0x1AB0; last = 0x1AFF; name = "Combining Diacritical Marks Extended" };
    { first = 0x1B00; last = 0x1B7F; name = "Balinese" };
    { first = 0x1B80; last = 0x1BBF; name = "Sundanese" };
    { first = 0x1BC0; last = 0x1BFF; name = "Batak" };
    { first = 0x1C00; last = 0x1C4F; name = "Lepcha" };
    { first = 0x1C50; last = 0x1C7F; name = "Ol Chiki" };
    { first = 0x1C80; last = 0x1C8F; name = "Cyrillic Extended-C" };
    { first = 0x1C90; last = 0x1CBF; name = "Georgian Extended" };
    { first = 0x1CC0; last = 0x1CCF; name = "Sundanese Supplement" };
    { first = 0x1CD0; last = 0x1CFF; name = "Vedic Extensions" };
    { first = 0x1D00; last = 0x1D7F; name = "Phonetic Extensions" };
    { first = 0x1D80; last = 0x1DBF; name = "Phonetic Extensions Supplement" };
    { first = 0x1DC0; last = 0x1DFF; name = "Combining Diacritical Marks Supplement" };
    { first = 0x1E00; last = 0x1EFF; name = "Latin Extended Additional" };
    { first = 0x1F00; last = 0x1FFF; name = "Greek Extended" };
    { first = 0x2000; last = 0x206F; name = "General Punctuation" };
    { first = 0x2070; last = 0x209F; name = "Superscripts and Subscripts" };
    { first = 0x20A0; last = 0x20CF; name = "Currency Symbols" };
    { first = 0x20D0; last = 0x20FF; name = "Combining Diacritical Marks for Symbols" };
    { first = 0x2100; last = 0x214F; name = "Letterlike Symbols" };
    { first = 0x2150; last = 0x218F; name = "Number Forms" };
    { first = 0x2190; last = 0x21FF; name = "Arrows" };
    { first = 0x2200; last = 0x22FF; name = "Mathematical Operators" };
    { first = 0x2300; last = 0x23FF; name = "Miscellaneous Technical" };
    { first = 0x2400; last = 0x243F; name = "Control Pictures" };
    { first = 0x2440; last = 0x245F; name = "Optical Character Recognition" };
    { first = 0x2460; last = 0x24FF; name = "Enclosed Alphanumerics" };
    { first = 0x2500; last = 0x257F; name = "Box Drawing" };
    { first = 0x2580; last = 0x259F; name = "Block Elements" };
    { first = 0x25A0; last = 0x25FF; name = "Geometric Shapes" };
    { first = 0x2600; last = 0x26FF; name = "Miscellaneous Symbols" };
    { first = 0x2700; last = 0x27BF; name = "Dingbats" };
    { first = 0x27C0; last = 0x27EF; name = "Miscellaneous Mathematical Symbols-A" };
    { first = 0x27F0; last = 0x27FF; name = "Supplemental Arrows-A" };
    { first = 0x2800; last = 0x28FF; name = "Braille Patterns" };
    { first = 0x2900; last = 0x297F; name = "Supplemental Arrows-B" };
    { first = 0x2980; last = 0x29FF; name = "Miscellaneous Mathematical Symbols-B" };
    { first = 0x2A00; last = 0x2AFF; name = "Supplemental Mathematical Operators" };
    { first = 0x2B00; last = 0x2BFF; name = "Miscellaneous Symbols and Arrows" };
    { first = 0x2C00; last = 0x2C5F; name = "Glagolitic" };
    { first = 0x2C60; last = 0x2C7F; name = "Latin Extended-C" };
    { first = 0x2C80; last = 0x2CFF; name = "Coptic" };
    { first = 0x2D00; last = 0x2D2F; name = "Georgian Supplement" };
    { first = 0x2D30; last = 0x2D7F; name = "Tifinagh" };
    { first = 0x2D80; last = 0x2DDF; name = "Ethiopic Extended" };
    { first = 0x2DE0; last = 0x2DFF; name = "Cyrillic Extended-A" };
    { first = 0x2E00; last = 0x2E7F; name = "Supplemental Punctuation" };
    { first = 0x2E80; last = 0x2EFF; name = "CJK Radicals Supplement" };
    { first = 0x2F00; last = 0x2FDF; name = "Kangxi Radicals" };
    { first = 0x2FF0; last = 0x2FFF; name = "Ideographic Description Characters" };
    { first = 0x3000; last = 0x303F; name = "CJK Symbols and Punctuation" };
    { first = 0x3040; last = 0x309F; name = "Hiragana" };
    { first = 0x30A0; last = 0x30FF; name = "Katakana" };
    { first = 0x3100; last = 0x312F; name = "Bopomofo" };
    { first = 0x3130; last = 0x318F; name = "Hangul Compatibility Jamo" };
    { first = 0x3190; last = 0x319F; name = "Kanbun" };
    { first = 0x31A0; last = 0x31BF; name = "Bopomofo Extended" };
    { first = 0x31C0; last = 0x31EF; name = "CJK Strokes" };
    { first = 0x31F0; last = 0x31FF; name = "Katakana Phonetic Extensions" };
    { first = 0x3200; last = 0x32FF; name = "Enclosed CJK Letters and Months" };
    { first = 0x3300; last = 0x33FF; name = "CJK Compatibility" };
    { first = 0x3400; last = 0x4DBF; name = "CJK Unified Ideographs Extension A" };
    { first = 0x4DC0; last = 0x4DFF; name = "Yijing Hexagram Symbols" };
    { first = 0x4E00; last = 0x9FFF; name = "CJK Unified Ideographs" };
    { first = 0xA000; last = 0xA48F; name = "Yi Syllables" };
    { first = 0xA490; last = 0xA4CF; name = "Yi Radicals" };
    { first = 0xA4D0; last = 0xA4FF; name = "Lisu" };
    { first = 0xA500; last = 0xA63F; name = "Vai" };
    { first = 0xA640; last = 0xA69F; name = "Cyrillic Extended-B" };
    { first = 0xA6A0; last = 0xA6FF; name = "Bamum" };
    { first = 0xA700; last = 0xA71F; name = "Modifier Tone Letters" };
    { first = 0xA720; last = 0xA7FF; name = "Latin Extended-D" };
    { first = 0xA800; last = 0xA82F; name = "Syloti Nagri" };
    { first = 0xA830; last = 0xA83F; name = "Common Indic Number Forms" };
    { first = 0xA840; last = 0xA87F; name = "Phags-pa" };
    { first = 0xA880; last = 0xA8DF; name = "Saurashtra" };
    { first = 0xA8E0; last = 0xA8FF; name = "Devanagari Extended" };
    { first = 0xA900; last = 0xA92F; name = "Kayah Li" };
    { first = 0xA930; last = 0xA95F; name = "Rejang" };
    { first = 0xA960; last = 0xA97F; name = "Hangul Jamo Extended-A" };
    { first = 0xA980; last = 0xA9DF; name = "Javanese" };
    { first = 0xA9E0; last = 0xA9FF; name = "Myanmar Extended-B" };
    { first = 0xAA00; last = 0xAA5F; name = "Cham" };
    { first = 0xAA60; last = 0xAA7F; name = "Myanmar Extended-A" };
    { first = 0xAA80; last = 0xAADF; name = "Tai Viet" };
    { first = 0xAAE0; last = 0xAAFF; name = "Meetei Mayek Extensions" };
    { first = 0xAB00; last = 0xAB2F; name = "Ethiopic Extended-A" };
    { first = 0xAB30; last = 0xAB6F; name = "Latin Extended-E" };
    { first = 0xAB70; last = 0xABBF; name = "Cherokee Supplement" };
    { first = 0xABC0; last = 0xABFF; name = "Meetei Mayek" };
    { first = 0xAC00; last = 0xD7AF; name = "Hangul Syllables" };
    { first = 0xD7B0; last = 0xD7FF; name = "Hangul Jamo Extended-B" };
    { first = 0xD800; last = 0xDB7F; name = "High Surrogates" };
    { first = 0xDB80; last = 0xDBFF; name = "High Private Use Surrogates" };
    { first = 0xDC00; last = 0xDFFF; name = "Low Surrogates" };
    { first = 0xE000; last = 0xF8FF; name = "Private Use Area" };
    { first = 0xF900; last = 0xFAFF; name = "CJK Compatibility Ideographs" };
    { first = 0xFB00; last = 0xFB4F; name = "Alphabetic Presentation Forms" };
    { first = 0xFB50; last = 0xFDFF; name = "Arabic Presentation Forms-A" };
    { first = 0xFE00; last = 0xFE0F; name = "Variation Selectors" };
    { first = 0xFE10; last = 0xFE1F; name = "Vertical Forms" };
    { first = 0xFE20; last = 0xFE2F; name = "Combining Half Marks" };
    { first = 0xFE30; last = 0xFE4F; name = "CJK Compatibility Forms" };
    { first = 0xFE50; last = 0xFE6F; name = "Small Form Variants" };
    { first = 0xFE70; last = 0xFEFF; name = "Arabic Presentation Forms-B" };
    { first = 0xFF00; last = 0xFFEF; name = "Halfwidth and Fullwidth Forms" };
    { first = 0xFFF0; last = 0xFFFF; name = "Specials" };
    { first = 0x10000; last = 0x1007F; name = "Linear B Syllabary" };
    { first = 0x10080; last = 0x100FF; name = "Linear B Ideograms" };
    { first = 0x10100; last = 0x1013F; name = "Aegean Numbers" };
    { first = 0x10140; last = 0x1018F; name = "Ancient Greek Numbers" };
    { first = 0x10190; last = 0x101CF; name = "Ancient Symbols" };
    { first = 0x101D0; last = 0x101FF; name = "Phaistos Disc" };
    { first = 0x10280; last = 0x1029F; name = "Lycian" };
    { first = 0x102A0; last = 0x102DF; name = "Carian" };
    { first = 0x102E0; last = 0x102FF; name = "Coptic Epact Numbers" };
    { first = 0x10300; last = 0x1032F; name = "Old Italic" };
    { first = 0x10330; last = 0x1034F; name = "Gothic" };
    { first = 0x10350; last = 0x1037F; name = "Old Permic" };
    { first = 0x10380; last = 0x1039F; name = "Ugaritic" };
    { first = 0x103A0; last = 0x103DF; name = "Old Persian" };
    { first = 0x10400; last = 0x1044F; name = "Deseret" };
    { first = 0x10450; last = 0x1047F; name = "Shavian" };
    { first = 0x10480; last = 0x104AF; name = "Osmanya" };
    { first = 0x104B0; last = 0x104FF; name = "Osage" };
    { first = 0x10500; last = 0x1052F; name = "Elbasan" };
    { first = 0x10530; last = 0x1056F; name = "Caucasian Albanian" };
    { first = 0x10570; last = 0x105BF; name = "Vithkuqi" };
    { first = 0x10600; last = 0x1077F; name = "Linear A" };
    { first = 0x10780; last = 0x107BF; name = "Latin Extended-F" };
    { first = 0x10800; last = 0x1083F; name = "Cypriot Syllabary" };
    { first = 0x10840; last = 0x1085F; name = "Imperial Aramaic" };
    { first = 0x10860; last = 0x1087F; name = "Palmyrene" };
    { first = 0x10880; last = 0x108AF; name = "Nabataean" };
    { first = 0x108E0; last = 0x108FF; name = "Hatran" };
    { first = 0x10900; last = 0x1091F; name = "Phoenician" };
    { first = 0x10920; last = 0x1093F; name = "Lydian" };
    { first = 0x10980; last = 0x1099F; name = "Meroitic Hieroglyphs" };
    { first = 0x109A0; last = 0x109FF; name = "Meroitic Cursive" };
    { first = 0x10A00; last = 0x10A5F; name = "Kharoshthi" };
    { first = 0x10A60; last = 0x10A7F; name = "Old South Arabian" };
    { first = 0x10A80; last = 0x10A9F; name = "Old North Arabian" };
    { first = 0x10AC0; last = 0x10AFF; name = "Manichaean" };
    { first = 0x10B00; last = 0x10B3F; name = "Avestan" };
    { first = 0x10B40; last = 0x10B5F; name = "Inscriptional Parthian" };
    { first = 0x10B60; last = 0x10B7F; name = "Inscriptional Pahlavi" };
    { first = 0x10B80; last = 0x10BAF; name = "Psalter Pahlavi" };
    { first = 0x10C00; last = 0x10C4F; name = "Old Turkic" };
    { first = 0x10C80; last = 0x10CFF; name = "Old Hungarian" };
    { first = 0x10D00; last = 0x10D3F; name = "Hanifi Rohingya" };
    { first = 0x10E60; last = 0x10E7F; name = "Rumi Numeral Symbols" };
    { first = 0x10E80; last = 0x10EBF; name = "Yezidi" };
    { first = 0x10EC0; last = 0x10EFF; name = "Arabic Extended-C" };
    { first = 0x10F00; last = 0x10F2F; name = "Old Sogdian" };
    { first = 0x10F30; last = 0x10F6F; name = "Sogdian" };
    { first = 0x10F70; last = 0x10FAF; name = "Old Uyghur" };
    { first = 0x10FB0; last = 0x10FDF; name = "Chorasmian" };
    { first = 0x10FE0; last = 0x10FFF; name = "Elymaic" };
    { first = 0x11000; last = 0x1107F; name = "Brahmi" };
    { first = 0x11080; last = 0x110CF; name = "Kaithi" };
    { first = 0x110D0; last = 0x110FF; name = "Sora Sompeng" };
    { first = 0x11100; last = 0x1114F; name = "Chakma" };
    { first = 0x11150; last = 0x1117F; name = "Mahajani" };
    { first = 0x11180; last = 0x111DF; name = "Sharada" };
    { first = 0x111E0; last = 0x111FF; name = "Sinhala Archaic Numbers" };
    { first = 0x11200; last = 0x1124F; name = "Khojki" };
    { first = 0x11280; last = 0x112AF; name = "Multani" };
    { first = 0x112B0; last = 0x112FF; name = "Khudawadi" };
    { first = 0x11300; last = 0x1137F; name = "Grantha" };
    { first = 0x11400; last = 0x1147F; name = "Newa" };
    { first = 0x11480; last = 0x114DF; name = "Tirhuta" };
    { first = 0x11580; last = 0x115FF; name = "Siddham" };
    { first = 0x11600; last = 0x1165F; name = "Modi" };
    { first = 0x11660; last = 0x1167F; name = "Mongolian Supplement" };
    { first = 0x11680; last = 0x116CF; name = "Takri" };
    { first = 0x11700; last = 0x1174F; name = "Ahom" };
    { first = 0x11800; last = 0x1184F; name = "Dogra" };
    { first = 0x118A0; last = 0x118FF; name = "Warang Citi" };
    { first = 0x11900; last = 0x1195F; name = "Dives Akuru" };
    { first = 0x119A0; last = 0x119FF; name = "Nandinagari" };
    { first = 0x11A00; last = 0x11A4F; name = "Zanabazar Square" };
    { first = 0x11A50; last = 0x11AAF; name = "Soyombo" };
    { first = 0x11AB0; last = 0x11ABF; name = "Unified Canadian Aboriginal Syllabics Extended-A" };
    { first = 0x11AC0; last = 0x11AFF; name = "Pau Cin Hau" };
    { first = 0x11B00; last = 0x11B5F; name = "Devanagari Extended-A" };
    { first = 0x11C00; last = 0x11C6F; name = "Bhaiksuki" };
    { first = 0x11C70; last = 0x11CBF; name = "Marchen" };
    { first = 0x11D00; last = 0x11D5F; name = "Masaram Gondi" };
    { first = 0x11D60; last = 0x11DAF; name = "Gunjala Gondi" };
    { first = 0x11EE0; last = 0x11EFF; name = "Makasar" };
    { first = 0x11F00; last = 0x11F5F; name = "Kawi" };
    { first = 0x11FB0; last = 0x11FBF; name = "Lisu Supplement" };
    { first = 0x11FC0; last = 0x11FFF; name = "Tamil Supplement" };
    { first = 0x12000; last = 0x123FF; name = "Cuneiform" };
    { first = 0x12400; last = 0x1247F; name = "Cuneiform Numbers and Punctuation" };
    { first = 0x12480; last = 0x1254F; name = "Early Dynastic Cuneiform" };
    { first = 0x12F90; last = 0x12FFF; name = "Cypro-Minoan" };
    { first = 0x13000; last = 0x1342F; name = "Egyptian Hieroglyphs" };
    { first = 0x13430; last = 0x1345F; name = "Egyptian Hieroglyph Format Controls" };
    { first = 0x14400; last = 0x1467F; name = "Anatolian Hieroglyphs" };
    { first = 0x16800; last = 0x16A3F; name = "Bamum Supplement" };
    { first = 0x16A40; last = 0x16A6F; name = "Mro" };
    { first = 0x16A70; last = 0x16ACF; name = "Tangsa" };
    { first = 0x16AD0; last = 0x16AFF; name = "Bassa Vah" };
    { first = 0x16B00; last = 0x16B8F; name = "Pahawh Hmong" };
    { first = 0x16E40; last = 0x16E9F; name = "Medefaidrin" };
    { first = 0x16F00; last = 0x16F9F; name = "Miao" };
    { first = 0x16FE0; last = 0x16FFF; name = "Ideographic Symbols and Punctuation" };
    { first = 0x17000; last = 0x187FF; name = "Tangut" };
    { first = 0x18800; last = 0x18AFF; name = "Tangut Components" };
    { first = 0x18B00; last = 0x18CFF; name = "Khitan Small Script" };
    { first = 0x18D00; last = 0x18D7F; name = "Tangut Supplement" };
    { first = 0x1AFF0; last = 0x1AFFF; name = "Kana Extended-B" };
    { first = 0x1B000; last = 0x1B0FF; name = "Kana Supplement" };
    { first = 0x1B100; last = 0x1B12F; name = "Kana Extended-A" };
    { first = 0x1B130; last = 0x1B16F; name = "Small Kana Extension" };
    { first = 0x1B170; last = 0x1B2FF; name = "Nushu" };
    { first = 0x1BC00; last = 0x1BC9F; name = "Duployan" };
    { first = 0x1BCA0; last = 0x1BCAF; name = "Shorthand Format Controls" };
    { first = 0x1CF00; last = 0x1CFCF; name = "Znamenny Musical Notation" };
    { first = 0x1D000; last = 0x1D0FF; name = "Byzantine Musical Symbols" };
    { first = 0x1D100; last = 0x1D1FF; name = "Musical Symbols" };
    { first = 0x1D200; last = 0x1D24F; name = "Ancient Greek Musical Notation" };
    { first = 0x1D2C0; last = 0x1D2DF; name = "Kaktovik Numerals" };
    { first = 0x1D2E0; last = 0x1D2FF; name = "Mayan Numerals" };
    { first = 0x1D300; last = 0x1D35F; name = "Tai Xuan Jing Symbols" };
    { first = 0x1D360; last = 0x1D37F; name = "Counting Rod Numerals" };
    { first = 0x1D400; last = 0x1D7FF; name = "Mathematical Alphanumeric Symbols" };
    { first = 0x1D800; last = 0x1DAAF; name = "Sutton SignWriting" };
    { first = 0x1DF00; last = 0x1DFFF; name = "Latin Extended-G" };
    { first = 0x1E000; last = 0x1E02F; name = "Glagolitic Supplement" };
    { first = 0x1E030; last = 0x1E08F; name = "Cyrillic Extended-D" };
    { first = 0x1E100; last = 0x1E14F; name = "Nyiakeng Puachue Hmong" };
    { first = 0x1E290; last = 0x1E2BF; name = "Toto" };
    { first = 0x1E2C0; last = 0x1E2FF; name = "Wancho" };
    { first = 0x1E4D0; last = 0x1E4FF; name = "Nag Mundari" };
    { first = 0x1E7E0; last = 0x1E7FF; name = "Ethiopic Extended-B" };
    { first = 0x1E800; last = 0x1E8DF; name = "Mende Kikakui" };
    { first = 0x1E900; last = 0x1E95F; name = "Adlam" };
    { first = 0x1EC70; last = 0x1ECBF; name = "Indic Siyaq Numbers" };
    { first = 0x1ED00; last = 0x1ED4F; name = "Ottoman Siyaq Numbers" };
    { first = 0x1EE00; last = 0x1EEFF; name = "Arabic Mathematical Alphabetic Symbols" };
    { first = 0x1F000; last = 0x1F02F; name = "Mahjong Tiles" };
    { first = 0x1F030; last = 0x1F09F; name = "Domino Tiles" };
    { first = 0x1F0A0; last = 0x1F0FF; name = "Playing Cards" };
    { first = 0x1F100; last = 0x1F1FF; name = "Enclosed Alphanumeric Supplement" };
    { first = 0x1F200; last = 0x1F2FF; name = "Enclosed Ideographic Supplement" };
    { first = 0x1F300; last = 0x1F5FF; name = "Miscellaneous Symbols and Pictographs" };
    { first = 0x1F600; last = 0x1F64F; name = "Emoticons" };
    { first = 0x1F650; last = 0x1F67F; name = "Ornamental Dingbats" };
    { first = 0x1F680; last = 0x1F6FF; name = "Transport and Map Symbols" };
    { first = 0x1F700; last = 0x1F77F; name = "Alchemical Symbols" };
    { first = 0x1F780; last = 0x1F7FF; name = "Geometric Shapes Extended" };
    { first = 0x1F800; last = 0x1F8FF; name = "Supplemental Arrows-C" };
    { first = 0x1F900; last = 0x1F9FF; name = "Supplemental Symbols and Pictographs" };
    { first = 0x1FA00; last = 0x1FA6F; name = "Chess Symbols" };
    { first = 0x1FA70; last = 0x1FAFF; name = "Symbols and Pictographs Extended-A" };
    { first = 0x1FB00; last = 0x1FBFF; name = "Symbols for Legacy Computing" };
    { first = 0x20000; last = 0x2A6DF; name = "CJK Unified Ideographs Extension B" };
    { first = 0x2A700; last = 0x2B73F; name = "CJK Unified Ideographs Extension C" };
    { first = 0x2B740; last = 0x2B81F; name = "CJK Unified Ideographs Extension D" };
    { first = 0x2B820; last = 0x2CEAF; name = "CJK Unified Ideographs Extension E" };
    { first = 0x2CEB0; last = 0x2EBEF; name = "CJK Unified Ideographs Extension F" };
    { first = 0x2F800; last = 0x2FA1F; name = "CJK Compatibility Ideographs Supplement" };
    { first = 0x30000; last = 0x3134F; name = "CJK Unified Ideographs Extension G" };
    { first = 0x31350; last = 0x323AF; name = "CJK Unified Ideographs Extension H" };
    { first = 0xE0000; last = 0xE007F; name = "Tags" };
    { first = 0xE0100; last = 0xE01EF; name = "Variation Selectors Supplement" };
    { first = 0xF0000; last = 0xFFFFF; name = "Supplementary Private Use Area-A" };
    { first = 0x100000; last = 0x10FFFF; name = "Supplementary Private Use Area-B" };
  |]

let count = Array.length all

let is_surrogate_block b = b.first >= 0xD800 && b.last <= 0xDFFF

let non_surrogate =
  Array.of_list (List.filter (fun b -> not (is_surrogate_block b)) (Array.to_list all))

(* Blocks are sorted by [first]; binary search.  Kept as the reference
   implementation: the flat BMP index below is generated from it and
   the test suite checks the two agree over the full code-point
   range. *)
let find_interval cp =
  let rec search lo hi =
    if lo > hi then None
    else
      let mid = (lo + hi) / 2 in
      let b = all.(mid) in
      if cp < b.first then search lo (mid - 1)
      else if cp > b.last then search (mid + 1) hi
      else Some b
  in
  search 0 (count - 1)

(* Flat block index over the BMP: one load replaces the binary search
   on the hot path (Idna.property is called per code point of every
   U-label).  Built eagerly at single-threaded module init, read-only
   afterwards. *)
let bmp_index =
  let t = Array.make 0x10000 (-1) in
  Array.iteri
    (fun i b ->
      if b.first <= 0xFFFF then
        for cp = b.first to min b.last 0xFFFF do
          Array.unsafe_set t cp i
        done)
    all;
  t

let find cp =
  if cp lsr 16 = 0 then
    let i = Array.unsafe_get bmp_index cp in
    if i < 0 then None else Some (Array.unsafe_get all i)
  else find_interval cp

let name_of cp = match find cp with Some b -> b.name | None -> "No_Block"
let sample b = b.first
