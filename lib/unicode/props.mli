(** Character classification used throughout the Unicert analysis.

    These predicates cover the categories the paper reasons about:
    C0/C1 control codes, invisible layout/format controls, bidirectional
    controls, whitespace variants, and the per-ASN.1-string-type
    character sets of Table 8. *)

val is_c0_control : Cp.t -> bool
(** [is_c0_control cp] — [U+0000 .. U+001F]. *)

val is_del : Cp.t -> bool
(** [is_del cp] — [U+007F]. *)

val is_c1_control : Cp.t -> bool
(** [is_c1_control cp] — [U+0080 .. U+009F]. *)

val is_control : Cp.t -> bool
(** [is_control cp] — C0, DEL, or C1. *)

val is_layout_control : Cp.t -> bool
(** [is_layout_control cp] — invisible layout/format controls of the
    General Punctuation block (ZWSP, ZWNJ, ZWJ, directional marks and
    embeddings, word joiner, invisible operators, deprecated format
    characters, line/paragraph separators). *)

val is_bidi_control : Cp.t -> bool
(** [is_bidi_control cp] — the Unicode [Bidi_Control] characters
    (U+061C, U+200E, U+200F, U+202A–U+202E, U+2066–U+2069). *)

val is_format : Cp.t -> bool
(** [is_format cp] — general-category-Cf approximation: soft hyphen,
    Arabic number signs, zero-width and directional characters, word
    joiners, interlinear annotation, BOM, tags and variation selectors
    supplement. *)

val is_whitespace : Cp.t -> bool
(** [is_whitespace cp] — Unicode [White_Space] property. *)

val is_nonascii_whitespace : Cp.t -> bool
(** [is_nonascii_whitespace cp] — whitespace beyond U+0020 and the
    ASCII controls, i.e. the lookalike spaces of Table 3 (NBSP,
    ideographic space, en/em spaces, …). *)

val is_invisible : Cp.t -> bool
(** [is_invisible cp] — renders with no visible glyph: zero-width and
    layout controls plus non-ASCII whitespace. *)

val is_printable_string_char : Cp.t -> bool
(** [is_printable_string_char cp] — ASN.1 PrintableString repertoire:
    [A-Za-z0-9], space, and [' ( ) + , - . / : = ?]. *)

val is_ia5_char : Cp.t -> bool
(** [is_ia5_char cp] — International Alphabet 5 (7-bit, [<= 0x7F]). *)

val is_visible_string_char : Cp.t -> bool
(** [is_visible_string_char cp] — printable ASCII [0x20 .. 0x7E]. *)

val is_numeric_string_char : Cp.t -> bool
(** [is_numeric_string_char cp] — digits and space. *)

val is_teletex_char : Cp.t -> bool
(** [is_teletex_char cp] — pragmatic T.61 repertoire model: graphic
    ASCII plus the Latin-1 graphic range (T.61's primary and
    supplementary sets largely coincide with it). *)

val is_ldh : Cp.t -> bool
(** [is_ldh cp] — letter/digit/hyphen, the DNSName alphabet
    [a-zA-Z0-9-]. *)

val is_dns_name_char : Cp.t -> bool
(** [is_dns_name_char cp] — [is_ldh] or the dot separator. *)

val is_noncharacter : Cp.t -> bool
(** [is_noncharacter cp] — the 66 Unicode noncharacters
    (U+FDD0–U+FDEF and the plane-final [xxFFFE]/[xxFFFF] pairs). *)

val is_ascii_upper : Cp.t -> bool
val is_ascii_lower : Cp.t -> bool
val is_ascii_digit : Cp.t -> bool
val is_ascii_letter : Cp.t -> bool

val ascii_lowercase : Cp.t -> Cp.t
(** [ascii_lowercase cp] lowercases [A-Z] and leaves everything else
    untouched. *)

val classify : Cp.t -> string
(** [classify cp] is a coarse human-readable class name used in reports:
    ["C0"], ["DEL"], ["C1"], ["layout"], ["format"], ["space"],
    ["printable-ascii"], ["latin1"], ["bmp"], or ["astral"]. *)

(** {2 Property bitmask}

    One flat-table load answers every class membership question the
    lints ask.  For BMP code points {!mask} indexes a precomputed
    65536-entry array; astral code points are computed on the fly from
    the reference range chains (rare in certificate strings). *)

val m_c0 : int
val m_del : int
val m_c1 : int
val m_layout : int
val m_bidi : int
val m_format : int
val m_whitespace : int
val m_nonascii_ws : int
val m_surrogate : int
val m_noncharacter : int
val m_replacement : int

val m_nonascii : int
(** Set for every code point above U+007F. *)

val m_not_printable : int
(** Set when the code point is {e outside} the PrintableString
    repertoire (negated so the mask of plain ASCII letters is 0). *)

val m_not_visible : int
val m_not_numeric : int
val m_not_teletex : int

val m_control : int
(** [m_c0 lor m_del lor m_c1]. *)

val m_invisible : int
(** [m_layout lor m_nonascii_ws]. *)

val mask : Cp.t -> int
(** [mask cp] is the property bitmask of [cp]. *)

val compute_mask : Cp.t -> int
(** The interval-chain computation the flat BMP table is generated
    from.  Exposed as the oracle for the exhaustive equivalence test;
    use {!mask} everywhere else. *)

(** The original interval/range-chain implementations.  The flat table
    is generated from these at module init; the test suite asserts
    exhaustive equivalence over the whole code-point range. *)
module Ref : sig
  val is_layout_control : Cp.t -> bool
  val is_bidi_control : Cp.t -> bool
  val is_format : Cp.t -> bool
  val is_whitespace : Cp.t -> bool
  val is_nonascii_whitespace : Cp.t -> bool
  val is_invisible : Cp.t -> bool
end
