(* Primary ASCII lookalikes for the confusables exercised by the paper:
   Cyrillic and Greek homographs, fullwidth forms, and a few
   mathematical/letterlike lookalikes.  A subset of UTS #39. *)
let table : (int, int) Hashtbl.t =
  let t = Hashtbl.create 256 in
  let add (cp, ascii) = Hashtbl.replace t cp ascii in
  List.iter add
    [
      (* Cyrillic -> Latin *)
      (0x0430, Char.code 'a'); (0x0435, Char.code 'e');
      (0x043E, Char.code 'o'); (0x0440, Char.code 'p');
      (0x0441, Char.code 'c'); (0x0443, Char.code 'y');
      (0x0445, Char.code 'x'); (0x0456, Char.code 'i');
      (0x0458, Char.code 'j'); (0x0455, Char.code 's');
      (0x04BB, Char.code 'h'); (0x0501, Char.code 'd');
      (0x051B, Char.code 'q'); (0x051D, Char.code 'w');
      (0x0410, Char.code 'A'); (0x0412, Char.code 'B');
      (0x0415, Char.code 'E'); (0x041A, Char.code 'K');
      (0x041C, Char.code 'M'); (0x041D, Char.code 'H');
      (0x041E, Char.code 'O'); (0x0420, Char.code 'P');
      (0x0421, Char.code 'C'); (0x0422, Char.code 'T');
      (0x0425, Char.code 'X'); (0x0406, Char.code 'I');
      (* Greek -> Latin *)
      (0x03BF, Char.code 'o'); (0x03B1, Char.code 'a');
      (0x03B5, Char.code 'e'); (0x03B9, Char.code 'i');
      (0x03BA, Char.code 'k'); (0x03BD, Char.code 'v');
      (0x03C1, Char.code 'p'); (0x03C5, Char.code 'u');
      (0x0391, Char.code 'A'); (0x0392, Char.code 'B');
      (0x0395, Char.code 'E'); (0x0396, Char.code 'Z');
      (0x0397, Char.code 'H'); (0x0399, Char.code 'I');
      (0x039A, Char.code 'K'); (0x039C, Char.code 'M');
      (0x039D, Char.code 'N'); (0x039F, Char.code 'O');
      (0x03A1, Char.code 'P'); (0x03A4, Char.code 'T');
      (0x03A5, Char.code 'Y'); (0x03A7, Char.code 'X');
      (* Letterlike / dotless *)
      (0x0131, Char.code 'i'); (0x0261, Char.code 'g');
      (0x217C, Char.code 'l'); (0x2113, Char.code 'l');
      (0x1D5BA, Char.code 'a');
      (* Punctuation lookalikes *)
      (0x2010, Char.code '-'); (0x2011, Char.code '-');
      (0x2012, Char.code '-'); (0x2013, Char.code '-');
      (0x2014, Char.code '-'); (0x2212, Char.code '-');
      (0x02BC, Char.code '\''); (0x2019, Char.code '\'');
      (0x037E, Char.code ';'); (0x0903, Char.code ':');
      (0x0589, Char.code ':'); (0x05C3, Char.code ':');
      (0x2236, Char.code ':');
      (* Slash / dot lookalikes *)
      (0x2044, Char.code '/'); (0x2215, Char.code '/');
      (0x3002, Char.code '.'); (0x0660, Char.code '.');
    ];
  (* Fullwidth forms map uniformly to their ASCII counterparts. *)
  for cp = 0xFF01 to 0xFF5E do
    add (cp, cp - 0xFF00 + 0x20)
  done;
  t

let lookalike_hashed cp = Hashtbl.find_opt table cp

(* Flat BMP lookalike table: -1 = no mapping.  One array load replaces
   the hashtable probe for every BMP code point (all mappings except
   the mathematical sans-serif 'a' live in the BMP).  Built eagerly at
   single-threaded module init, read-only afterwards. *)
let bmp_lookalike =
  let t = Array.make 0x10000 (-1) in
  Hashtbl.iter (fun cp ascii -> if cp <= 0xFFFF then t.(cp) <- ascii) table;
  t

let lookalike cp =
  if cp lsr 16 = 0 then
    let a = Array.unsafe_get bmp_lookalike cp in
    if a < 0 then None else Some a
  else lookalike_hashed cp

let skeleton_with ~lookalike cps =
  let keep = ref [] in
  Array.iter
    (fun cp ->
      if Props.is_layout_control cp || Props.is_control cp then ()
      else if Props.is_nonascii_whitespace cp then keep := 0x20 :: !keep
      else
        let cp = match lookalike cp with Some a -> a | None -> cp in
        keep := Props.ascii_lowercase cp :: !keep)
    cps;
  Array.of_list (List.rev !keep)

let skeleton cps = skeleton_with ~lookalike cps
let skeleton_hashed cps = skeleton_with ~lookalike:lookalike_hashed cps

let utf8_skeleton s = Codec.utf8_of_cps (skeleton (Codec.cps_of_utf8 s))

let confusable a b =
  utf8_skeleton a = utf8_skeleton b && Normalize.utf8_to_nfc a <> Normalize.utf8_to_nfc b

(* Browser equivalent-substitution policy modelled after the paper's
   Table 14 discussion: the substitution target is the *canonical*
   equivalent rather than the visually faithful one. *)
let equivalent_substitution cp =
  match cp with
  | 0x037E -> Some 0x003B (* Greek question mark -> semicolon *)
  | 0x0387 -> Some 0x00B7 (* ano teleia -> middle dot *)
  | 0x212A -> Some 0x004B (* Kelvin -> K *)
  | 0x212B -> Some 0x00C5 (* Angstrom -> A-ring *)
  | _ -> None
