(** The Unicode block table.

    The test-Unicert generator of the paper (§3.2) samples one code
    point from each standard Unicode block, excluding surrogates.  This
    module embeds the block ranges of the Unicode Character Database
    [Blocks.txt] (Unicode 15.0 repertoire). *)

type t = { name : string; first : Cp.t; last : Cp.t }
(** A block: inclusive code-point range and its UCD name. *)

val all : t array
(** [all] is every block, in code-point order. *)

val count : int
(** [count] is [Array.length all]. *)

val non_surrogate : t array
(** [non_surrogate] is [all] minus the three surrogate blocks — the
    sampling universe used by the generator. *)

val find : Cp.t -> t option
(** [find cp] is the block containing [cp], if any (the block table does
    not cover all of the code space).  BMP lookups hit a flat
    direct-index table; astral lookups binary-search the ranges. *)

val find_interval : Cp.t -> t option
(** The binary-search reference implementation of {!find}; the flat BMP
    table is generated from it and tested against it exhaustively. *)

val name_of : Cp.t -> string
(** [name_of cp] is the containing block's name or ["No_Block"]. *)

val sample : t -> Cp.t
(** [sample b] is a representative code point of [b] (its first code
    point, matching the generator's "one character from each block"
    rule). *)
