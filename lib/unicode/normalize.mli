(** Unicode Normalization Form C (canonical composition).

    RFC 5280 (via RFC 8399/9549) requires UTF8String attribute values to
    be normalized to NFC; the paper's T2 ("Bad Normalization") lints
    check exactly this.  This module implements the standard NFC
    algorithm — recursive canonical decomposition, canonical ordering by
    combining class, then canonical composition, with algorithmic
    Hangul — over an embedded canonical-mapping table covering the
    Latin-1 Supplement, Latin Extended-A, Greek and Coptic, and Cyrillic
    repertoires plus the canonical singletons (Angstrom, Kelvin, Ohm
    signs and the Greek question mark/ano teleia).  Code points outside
    the table are treated as NFC-stable starters, which is correct for
    the unaccented scripts (CJK, Hangul precomposed handled
    algorithmically, ASCII) and documented as the table's coverage
    boundary in DESIGN.md. *)

val combining_class : Cp.t -> int
(** [combining_class cp] is the canonical combining class (0 for
    starters and for code points outside the embedded table).  BMP
    lookups hit a flat byte table. *)

val combining_class_chain : Cp.t -> int
(** The range-chain reference implementation of {!combining_class}; the
    flat table is generated from it and tested against it
    exhaustively. *)

val canonical_decomposition : Cp.t -> Cp.t list option
(** [canonical_decomposition cp] is the (non-recursive) canonical
    mapping of [cp], if any. *)

val decompose : Cp.t array -> Cp.t array
(** [decompose cps] is the full canonical decomposition (NFD) with
    canonical ordering applied. *)

val to_nfc : Cp.t array -> Cp.t array
(** [to_nfc cps] normalizes to NFC. *)

val is_nfc : Cp.t array -> bool
(** [is_nfc cps] is [true] iff [cps] is already in NFC. *)

val utf8_to_nfc : string -> string
(** [utf8_to_nfc s] decodes UTF-8 (replacing malformed sequences),
    normalizes, and re-encodes. *)

val utf8_is_nfc : string -> bool
(** [utf8_is_nfc s] is [true] iff well-formed [s] is NFC-normalized. *)
