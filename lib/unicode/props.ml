let is_c0_control cp = cp >= 0x00 && cp <= 0x1F
let is_del cp = cp = 0x7F
let is_c1_control cp = cp >= 0x80 && cp <= 0x9F
let is_control cp = is_c0_control cp || is_del cp || is_c1_control cp

(* Interval/range-chain implementations.  These remain the source of
   truth: the flat BMP table below is generated from them at module
   init, they serve code points beyond the BMP directly, and the test
   suite checks the table against them over the full code-point
   range. *)
module Ref = struct
  let is_layout_control cp =
    (cp >= 0x200B && cp <= 0x200F)
    || (cp >= 0x202A && cp <= 0x202E)
    || (cp >= 0x2060 && cp <= 0x2064)
    || (cp >= 0x2066 && cp <= 0x206F)
    || cp = 0x2028 || cp = 0x2029

  let is_bidi_control cp =
    cp = 0x061C || cp = 0x200E || cp = 0x200F
    || (cp >= 0x202A && cp <= 0x202E)
    || (cp >= 0x2066 && cp <= 0x2069)

  let is_format cp =
    cp = 0x00AD
    || (cp >= 0x0600 && cp <= 0x0605)
    || cp = 0x061C || cp = 0x06DD || cp = 0x070F || cp = 0x08E2
    || (cp >= 0x200B && cp <= 0x200F)
    || (cp >= 0x202A && cp <= 0x202E)
    || (cp >= 0x2060 && cp <= 0x2064)
    || (cp >= 0x2066 && cp <= 0x206F)
    || cp = 0xFEFF
    || (cp >= 0xFFF9 && cp <= 0xFFFB)
    || cp = 0x110BD
    || (cp >= 0x1BCA0 && cp <= 0x1BCA3)
    || (cp >= 0x1D173 && cp <= 0x1D17A)
    || cp = 0xE0001
    || (cp >= 0xE0020 && cp <= 0xE007F)

  let is_whitespace cp =
    (cp >= 0x0009 && cp <= 0x000D)
    || cp = 0x0020 || cp = 0x0085 || cp = 0x00A0 || cp = 0x1680
    || (cp >= 0x2000 && cp <= 0x200A)
    || cp = 0x2028 || cp = 0x2029 || cp = 0x202F || cp = 0x205F || cp = 0x3000

  let is_nonascii_whitespace cp = is_whitespace cp && cp > 0x20
  let is_invisible cp = is_layout_control cp || is_nonascii_whitespace cp
end

let is_ascii_upper cp = cp >= Char.code 'A' && cp <= Char.code 'Z'
let is_ascii_lower cp = cp >= Char.code 'a' && cp <= Char.code 'z'
let is_ascii_digit cp = cp >= Char.code '0' && cp <= Char.code '9'
let is_ascii_letter cp = is_ascii_upper cp || is_ascii_lower cp
let ascii_lowercase cp = if is_ascii_upper cp then cp + 32 else cp

let is_printable_string_char cp =
  is_ascii_letter cp || is_ascii_digit cp
  ||
  match cp with
  | 0x20 (* space *) | 0x27 (* ' *) | 0x28 (* ( *) | 0x29 (* ) *)
  | 0x2B (* + *) | 0x2C (* , *) | 0x2D (* - *) | 0x2E (* . *)
  | 0x2F (* / *) | 0x3A (* : *) | 0x3D (* = *) | 0x3F (* ? *) -> true
  | _ -> false

let is_ia5_char cp = cp >= 0x00 && cp <= 0x7F
let is_visible_string_char cp = cp >= 0x20 && cp <= 0x7E
let is_numeric_string_char cp = is_ascii_digit cp || cp = 0x20

let is_teletex_char cp =
  is_visible_string_char cp || (cp >= 0xA0 && cp <= 0xFF)

let is_ldh cp = is_ascii_letter cp || is_ascii_digit cp || cp = Char.code '-'
let is_dns_name_char cp = is_ldh cp || cp = Char.code '.'

(* Property bitmask: every class a lint tests for, resolved by one
   table load.  Bits are computed once per BMP code point at module
   init; astral code points fall back to the range chains. *)
let m_c0 = 1 lsl 0
let m_del = 1 lsl 1
let m_c1 = 1 lsl 2
let m_layout = 1 lsl 3
let m_bidi = 1 lsl 4
let m_format = 1 lsl 5
let m_whitespace = 1 lsl 6
let m_nonascii_ws = 1 lsl 7
let m_surrogate = 1 lsl 8
let m_noncharacter = 1 lsl 9
let m_replacement = 1 lsl 10
let m_nonascii = 1 lsl 11
let m_not_printable = 1 lsl 12
let m_not_visible = 1 lsl 13
let m_not_numeric = 1 lsl 14
let m_not_teletex = 1 lsl 15
let m_control = m_c0 lor m_del lor m_c1
let m_invisible = m_layout lor m_nonascii_ws

let is_noncharacter cp =
  (cp >= 0xFDD0 && cp <= 0xFDEF) || cp land 0xFFFE = 0xFFFE

let compute_mask cp =
  (if is_c0_control cp then m_c0 else 0)
  lor (if is_del cp then m_del else 0)
  lor (if is_c1_control cp then m_c1 else 0)
  lor (if Ref.is_layout_control cp then m_layout else 0)
  lor (if Ref.is_bidi_control cp then m_bidi else 0)
  lor (if Ref.is_format cp then m_format else 0)
  lor (if Ref.is_whitespace cp then m_whitespace else 0)
  lor (if Ref.is_nonascii_whitespace cp then m_nonascii_ws else 0)
  lor (if Cp.is_surrogate cp then m_surrogate else 0)
  lor (if is_noncharacter cp then m_noncharacter else 0)
  lor (if cp = 0xFFFD then m_replacement else 0)
  lor (if cp > 0x7F then m_nonascii else 0)
  lor (if is_printable_string_char cp then 0 else m_not_printable)
  lor (if is_visible_string_char cp then 0 else m_not_visible)
  lor (if is_numeric_string_char cp then 0 else m_not_numeric)
  lor (if is_teletex_char cp then 0 else m_not_teletex)

(* Built eagerly: module initialisation is single-threaded, so the
   table is read-only by the time `Par` domains touch it. *)
let bmp_masks = Array.init 0x10000 compute_mask

let mask cp =
  if cp lsr 16 = 0 then Array.unsafe_get bmp_masks cp else compute_mask cp

let is_layout_control cp = mask cp land m_layout <> 0
let is_bidi_control cp = mask cp land m_bidi <> 0
let is_format cp = mask cp land m_format <> 0
let is_whitespace cp = mask cp land m_whitespace <> 0
let is_nonascii_whitespace cp = mask cp land m_nonascii_ws <> 0
let is_invisible cp = mask cp land m_invisible <> 0

let classify cp =
  if is_c0_control cp then "C0"
  else if is_del cp then "DEL"
  else if is_c1_control cp then "C1"
  else if is_layout_control cp then "layout"
  else if is_format cp then "format"
  else if is_whitespace cp && cp <> 0x20 then "space"
  else if Cp.is_printable_ascii cp then "printable-ascii"
  else if cp <= 0xFF then "latin1"
  else if Cp.is_bmp cp then "bmp"
  else "astral"
