(** CRC-32 (IEEE 802.3 polynomial, reflected) over strings.

    Used for per-record integrity framing in {!Segment}: cheap enough
    to verify on every read, strong enough to catch the bit flips and
    torn writes {!Chaos} injects.  Values are returned masked to 32
    bits in a native [int]. *)

val string : string -> int
(** [string s] is the CRC-32 of all of [s]. *)

val sub : string -> pos:int -> len:int -> int
(** CRC-32 of [len] bytes of [s] starting at [pos]. *)
