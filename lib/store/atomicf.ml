let commits =
  Obs.Registry.counter ~help:"Atomic file commits completed by the store"
    "unicert_store_commits_total"

let fsyncs = Obs.Registry.counter "unicert_store_fsync_total"

let write ~op ~rename_point path content =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try
     (match Chaos.plan_write ~op ~len:(String.length content) with
     | Chaos.Pass -> output_string oc content
     | Chaos.Flip { offset } ->
         let b = Bytes.of_string content in
         Bytes.set b offset (Char.chr (Char.code (Bytes.get b offset) lxor 0x10));
         output_bytes oc b
     | Chaos.Prefix { len; crash } ->
         output_string oc (String.sub content 0 len);
         if crash then (
           flush oc;
           Obs.Trace.instant ~cat:"store" ("chaos.torn:" ^ op);
           raise (Chaos.Crashed ("torn:" ^ op))));
     flush oc;
     Unix.fsync (Unix.descr_of_out_channel oc);
     Obs.Counter.inc fsyncs
   with e ->
     close_out_noerr oc;
     raise e);
  close_out oc;
  Chaos.point (rename_point ^ ".before");
  Sys.rename tmp path;
  Chaos.point (rename_point ^ ".after");
  Obs.Counter.inc commits
