let magic = "USTOREIDX1\n"

let needs_escape c =
  c = '%' || c = '\t' || c = '\n' || c = '\r' || Char.code c < 0x20

let encode_key k =
  if String.exists needs_escape k then (
    let b = Buffer.create (String.length k + 8) in
    String.iter
      (fun c ->
        if needs_escape c then Buffer.add_string b (Printf.sprintf "%%%02X" (Char.code c))
        else Buffer.add_char b c)
      k;
    Buffer.contents b)
  else k

let decode_key k =
  if not (String.contains k '%') then Ok k
  else
    let b = Buffer.create (String.length k) in
    let n = String.length k in
    let rec go i =
      if i >= n then Ok (Buffer.contents b)
      else if k.[i] = '%' then
        if i + 2 < n then (
          match int_of_string_opt ("0x" ^ String.sub k (i + 1) 2) with
          | Some c ->
              Buffer.add_char b (Char.chr c);
              go (i + 3)
          | None -> Error "bad escape")
        else Error "truncated escape"
      else (
        Buffer.add_char b k.[i];
        go (i + 1))
    in
    go 0

let save ~dir ~name entries =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (k, ids) ->
      let prev = Option.value ~default:[] (Hashtbl.find_opt tbl k) in
      Hashtbl.replace tbl k (List.rev_append ids prev))
    entries;
  let lines =
    Hashtbl.fold (fun k ids acc -> (encode_key k, List.sort_uniq compare ids) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let b = Buffer.create 4096 in
  Buffer.add_string b magic;
  List.iter
    (fun (k, ids) ->
      Buffer.add_string b k;
      Buffer.add_char b '\t';
      Buffer.add_string b (String.concat "," (List.map string_of_int ids));
      Buffer.add_char b '\n')
    lines;
  let sha = Ucrypto.Sha256.hex (Buffer.contents b) in
  Buffer.add_string b ("end " ^ sha ^ "\n");
  let file = name ^ ".idx" in
  Atomicf.write ~op:"index.write" ~rename_point:"index.rename" (Filename.concat dir file)
    (Buffer.contents b);
  (file, sha)

let read_and_verify ~dir ~file =
  let path = Filename.concat dir file in
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error e -> Error e
  | s -> (
      if String.length s < String.length magic || String.sub s 0 (String.length magic) <> magic
      then Error "bad index header"
      else
        (* The seal is the final "end <sha>\n" line over everything
           before it. *)
        match String.rindex_opt (String.trim s) '\n' with
        | None -> Error "missing index seal"
        | Some last_nl ->
            let body = String.sub s 0 (last_nl + 1) in
            let seal_line = String.trim (String.sub s (last_nl + 1) (String.length s - last_nl - 1)) in
            if not (String.length seal_line = 68 && String.sub seal_line 0 4 = "end ") then
              Error "missing index seal"
            else
              let sha = String.sub seal_line 4 64 in
              if Ucrypto.Sha256.hex body <> sha then Error "index seal mismatch"
              else Ok (body, sha))

let sha_hex ~dir ~file = Result.map snd (read_and_verify ~dir ~file)

let load ~dir ~file =
  match read_and_verify ~dir ~file with
  | Error e -> Error e
  | Ok (body, _) ->
      let lines = String.split_on_char '\n' body in
      (* drop the magic line and the trailing empty split *)
      let lines =
        match lines with
        | _magic :: rest -> List.filter (fun l -> l <> "") rest
        | [] -> []
      in
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | line :: rest -> (
            match String.index_opt line '\t' with
            | None -> Error (Printf.sprintf "malformed index line: %s" line)
            | Some tab -> (
                let k = String.sub line 0 tab in
                let ids = String.sub line (tab + 1) (String.length line - tab - 1) in
                match decode_key k with
                | Error e -> Error e
                | Ok key ->
                    let ids =
                      String.split_on_char ',' ids
                      |> List.filter_map int_of_string_opt
                    in
                    go ((key, ids) :: acc) rest))
      in
      go [] lines
