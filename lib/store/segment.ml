let magic = "USTORESEG1\n"
let magic_len = String.length magic

let appends = Obs.Registry.counter ~help:"Records appended to store segments" "unicert_store_appends_total"
let fsyncs = Obs.Registry.counter ~help:"fsync calls issued by the store" "unicert_store_fsync_total"

let u32be n =
  let b = Bytes.create 4 in
  Bytes.set b 0 (Char.chr ((n lsr 24) land 0xFF));
  Bytes.set b 1 (Char.chr ((n lsr 16) land 0xFF));
  Bytes.set b 2 (Char.chr ((n lsr 8) land 0xFF));
  Bytes.set b 3 (Char.chr (n land 0xFF));
  Bytes.unsafe_to_string b

let read_u32be s pos =
  (Char.code s.[pos] lsl 24)
  lor (Char.code s.[pos + 1] lsl 16)
  lor (Char.code s.[pos + 2] lsl 8)
  lor Char.code s.[pos + 3]

type writer = {
  oc : out_channel;
  headers : Buffer.t;  (* concatenated (len, crc) pairs, 8 bytes per record *)
  mutable n : int;
  mutable poisoned : bool;
}

let digest_hex headers n =
  let open Ucrypto in
  let h = Sha256.digest (headers ^ u32be n) in
  (* Render binary digest as lowercase hex. *)
  String.concat "" (List.init (String.length h) (fun i -> Printf.sprintf "%02x" (Char.code h.[i])))

let seal_hex w = digest_hex (Buffer.contents w.headers) w.n
let count w = w.n

let create path =
  let oc = open_out_bin path in
  output_string oc magic;
  { oc; headers = Buffer.create 256; n = 0; poisoned = false }

(* Apply a Chaos decision to a fully built frame.  On a torn write the
   prefix is flushed to the OS and the writer poisoned before the
   simulated kill, so nothing written later can repair the tear. *)
let write_frame w ~op frame =
  match Chaos.plan_write ~op ~len:(String.length frame) with
  | Chaos.Pass -> output_string w.oc frame
  | Chaos.Flip { offset } ->
      let b = Bytes.of_string frame in
      Bytes.set b offset (Char.chr (Char.code (Bytes.get b offset) lxor 0x10));
      output_bytes w.oc b
  | Chaos.Prefix { len; crash } ->
      output_string w.oc (String.sub frame 0 len);
      flush w.oc;
      if crash then (
        w.poisoned <- true;
        Obs.Trace.instant ~cat:"store" ("chaos.torn:" ^ op);
        raise (Chaos.Crashed ("torn:" ^ op)))

let guard w f =
  if w.poisoned then ()
  else
    try f ()
    with Chaos.Crashed _ as e ->
      w.poisoned <- true;
      raise e

let append w payload =
  guard w (fun () ->
      let header = u32be (String.length payload) ^ u32be (Crc32.string payload) in
      write_frame w ~op:"segment.append" ("R" ^ header ^ payload);
      (* The writer's view of the segment tracks planned frames even
         when Chaos shorted the write — that is the lying-disk model;
         the divergence is what fsck must catch. *)
      Buffer.add_string w.headers header;
      w.n <- w.n + 1;
      Obs.Counter.inc appends;
      Chaos.point "segment.append.after")

let sync w =
  if not w.poisoned then (
    flush w.oc;
    Unix.fsync (Unix.descr_of_out_channel w.oc);
    Obs.Counter.inc fsyncs)

let seal w =
  guard w (fun () ->
      Chaos.point "segment.seal.before";
      let digest = Ucrypto.Sha256.digest (Buffer.contents w.headers ^ u32be w.n) in
      write_frame w ~op:"segment.seal" ("S" ^ u32be w.n ^ digest);
      flush w.oc;
      Unix.fsync (Unix.descr_of_out_channel w.oc);
      Obs.Counter.inc fsyncs;
      Chaos.point "segment.seal.after")

let close w =
  if w.poisoned then (try Stdlib.close_out_noerr w.oc with _ -> ())
  else close_out w.oc

type problem =
  | Bad_header
  | Torn_tail of { offset : int }
  | Bad_frame of { offset : int }
  | Bad_crc of { record : int; offset : int }
  | Bad_seal
  | Trailing of { offset : int }

let problem_name = function
  | Bad_header -> "bad_header"
  | Torn_tail _ -> "torn_tail"
  | Bad_frame _ -> "bad_frame"
  | Bad_crc _ -> "bad_crc"
  | Bad_seal -> "bad_seal"
  | Trailing _ -> "trailing_garbage"

let describe_problem = function
  | Bad_header -> "segment header magic mismatch"
  | Torn_tail { offset } -> Printf.sprintf "torn record tail at byte %d" offset
  | Bad_frame { offset } -> Printf.sprintf "unknown frame tag at byte %d" offset
  | Bad_crc { record; offset } ->
      Printf.sprintf "CRC mismatch on record %d at byte %d" record offset
  | Bad_seal -> "seal footer does not match records"
  | Trailing { offset } -> Printf.sprintf "trailing bytes after seal at %d" offset

type scan = {
  payloads : string list;
  count : int;
  sealed : bool;
  good_bytes : int;
  ends : int array;
  seal_hex : string;
  problem : problem option;
}

let scan ?(keep_payloads = true) path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let len = in_channel_length ic in
        really_input_string ic len)
  with
  | exception Sys_error e -> Error e
  | s ->
      let len = String.length s in
      let headers = Buffer.create 256 in
      let payloads = ref [] in
      let ends = ref [] in
      let finish ~pos ~n ~sealed problem =
        {
          payloads = List.rev !payloads;
          count = n;
          sealed;
          good_bytes = pos;
          ends = Array.of_list (List.rev !ends);
          seal_hex = digest_hex (Buffer.contents headers) n;
          problem;
        }
      in
      if len < magic_len || String.sub s 0 magic_len <> magic then
        Ok
          {
            payloads = [];
            count = 0;
            sealed = false;
            good_bytes = 0;
            ends = [||];
            seal_hex = digest_hex "" 0;
            problem = Some Bad_header;
          }
      else
        let rec loop pos n =
          if pos = len then Ok (finish ~pos ~n ~sealed:false None)
          else
            match s.[pos] with
            | 'R' ->
                if pos + 9 > len then Ok (finish ~pos ~n ~sealed:false (Some (Torn_tail { offset = pos })))
                else
                  let plen = read_u32be s (pos + 1) in
                  let crc = read_u32be s (pos + 5) in
                  if pos + 9 + plen > len then
                    Ok (finish ~pos ~n ~sealed:false (Some (Torn_tail { offset = pos })))
                  else if Crc32.sub s ~pos:(pos + 9) ~len:plen <> crc then
                    Ok (finish ~pos ~n ~sealed:false (Some (Bad_crc { record = n; offset = pos })))
                  else (
                    if keep_payloads then payloads := String.sub s (pos + 9) plen :: !payloads;
                    Buffer.add_string headers (String.sub s (pos + 1) 8);
                    ends := (pos + 9 + plen) :: !ends;
                    loop (pos + 9 + plen) (n + 1))
            | 'S' ->
                if pos + 37 > len then Ok (finish ~pos ~n ~sealed:false (Some (Torn_tail { offset = pos })))
                else
                  let fcount = read_u32be s (pos + 1) in
                  let fdigest = String.sub s (pos + 5) 32 in
                  let expect = Ucrypto.Sha256.digest (Buffer.contents headers ^ u32be n) in
                  if fcount <> n || not (String.equal fdigest expect) then
                    Ok (finish ~pos ~n ~sealed:false (Some Bad_seal))
                  else if pos + 37 < len then
                    Ok (finish ~pos:(pos + 37) ~n ~sealed:true (Some (Trailing { offset = pos + 37 })))
                  else Ok (finish ~pos:(pos + 37) ~n ~sealed:true None)
            | _ -> Ok (finish ~pos ~n ~sealed:false (Some (Bad_frame { offset = pos })))
        in
        loop magic_len 0

let reopen path =
  match scan ~keep_payloads:false path with
  | Error e -> invalid_arg (Printf.sprintf "Segment.reopen %s: %s" path e)
  | Ok { sealed = true; _ } -> invalid_arg (Printf.sprintf "Segment.reopen %s: sealed" path)
  | Ok { problem = Some p; _ } ->
      invalid_arg (Printf.sprintf "Segment.reopen %s: %s" path (describe_problem p))
  | Ok { count = n; good_bytes; _ } ->
      (* Rebuild the seal-digest accumulator from the intact records. *)
      let ic = open_in_bin path in
      let s =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic good_bytes)
      in
      let headers = Buffer.create 256 in
      let pos = ref magic_len in
      for _ = 1 to n do
        Buffer.add_string headers (String.sub s (!pos + 1) 8);
        pos := !pos + 9 + read_u32be s (!pos + 1)
      done;
      let oc = open_out_gen [ Open_wronly; Open_binary; Open_append ] 0o644 path in
      { oc; headers; n; poisoned = false }

let truncate path n = Unix.truncate path n
