type id = { scale : int; seed : int; fingerprint : string }

type seg = { file : string; lo : int; hi : int; records : int; seal : string }

type t = {
  state : [ `Building | `Complete ];
  lints : string;
  segments : seg list;
  rows : seg list;
  indexes : (string * string * string) list;
  meta : (string * string) list;
}

let version = 1
let id_file = "store.id"
let file = "manifest.json"

(* --- serialization (hand-rolled on Obs.Jsonv, like the trace exporter) --- *)

let esc = Obs.Jsonv.escape

let seg_json b { file; lo; hi; records; seal } =
  Buffer.add_string b
    (Printf.sprintf {|{"file":%s,"lo":%d,"hi":%d,"records":%d,"seal":%s}|}
       (esc file) lo hi records (esc seal))

let list_json b xs f =
  Buffer.add_char b '[';
  List.iteri
    (fun i x ->
      if i > 0 then Buffer.add_char b ',';
      f b x)
    xs;
  Buffer.add_char b ']'

let to_json t =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf {|{"version":%d,"state":%s,"lints":%s,"segments":|} version
       (esc (match t.state with `Building -> "building" | `Complete -> "complete"))
       (esc t.lints));
  list_json b t.segments seg_json;
  Buffer.add_string b {|,"rows":|};
  list_json b t.rows seg_json;
  Buffer.add_string b {|,"indexes":|};
  list_json b t.indexes (fun b (name, file, sha) ->
      Buffer.add_string b
        (Printf.sprintf {|{"name":%s,"file":%s,"sha256":%s}|} (esc name) (esc file) (esc sha)));
  Buffer.add_string b {|,"meta":{|};
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (esc k);
      Buffer.add_char b ':';
      Buffer.add_string b (esc v))
    t.meta;
  Buffer.add_string b "}}\n";
  Buffer.contents b

let id_to_json { scale; seed; fingerprint } =
  Printf.sprintf {|{"version":%d,"scale":%d,"seed":%d,"fingerprint":%s}|} version scale
    seed (esc fingerprint)
  ^ "\n"

(* --- parsing --- *)

let str = function Obs.Jsonv.Str s -> Some s | _ -> None
let num = function Obs.Jsonv.Num f -> Some (int_of_float f) | _ -> None

let field conv name j =
  match Option.bind (Obs.Jsonv.member name j) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing or ill-typed field %S" name)

let ( let* ) = Result.bind

let seg_of_json j =
  let* file = field str "file" j in
  let* lo = field num "lo" j in
  let* hi = field num "hi" j in
  let* records = field num "records" j in
  let* seal = field str "seal" j in
  Ok { file; lo; hi; records; seal }

let segs_of_json name j =
  match Obs.Jsonv.member name j with
  | Some (Obs.Jsonv.List xs) ->
      List.fold_left
        (fun acc x ->
          let* acc = acc in
          let* s = seg_of_json x in
          Ok (s :: acc))
        (Ok []) xs
      |> Result.map List.rev
  | _ -> Error (Printf.sprintf "missing list %S" name)

let check_version j =
  let* v = field num "version" j in
  if v <> version then
    Error (Printf.sprintf "format version %d, this build reads %d" v version)
  else Ok ()

let of_json j =
  let* () = check_version j in
  let* state =
    match field str "state" j with
    | Ok "building" -> Ok `Building
    | Ok "complete" -> Ok `Complete
    | Ok s -> Error (Printf.sprintf "unknown state %S" s)
    | Error e -> Error e
  in
  let* lints = field str "lints" j in
  let* segments = segs_of_json "segments" j in
  let* rows = segs_of_json "rows" j in
  let* indexes =
    match Obs.Jsonv.member "indexes" j with
    | Some (Obs.Jsonv.List xs) ->
        List.fold_left
          (fun acc x ->
            let* acc = acc in
            let* name = field str "name" x in
            let* file = field str "file" x in
            let* sha = field str "sha256" x in
            Ok ((name, file, sha) :: acc))
          (Ok []) xs
        |> Result.map List.rev
    | _ -> Error "missing list \"indexes\""
  in
  let* meta =
    match Obs.Jsonv.member "meta" j with
    | Some (Obs.Jsonv.Obj kvs) ->
        List.fold_left
          (fun acc (k, v) ->
            let* acc = acc in
            match v with
            | Obs.Jsonv.Str s -> Ok ((k, s) :: acc)
            | _ -> Error (Printf.sprintf "meta %S is not a string" k))
          (Ok []) kvs
        |> Result.map List.rev
    | _ -> Error "missing object \"meta\""
  in
  Ok { state; lints; segments; rows; indexes; meta }

let id_of_json j =
  let* () = check_version j in
  let* scale = field num "scale" j in
  let* seed = field num "seed" j in
  let* fingerprint = field str "fingerprint" j in
  Ok { scale; seed; fingerprint }

(* --- I/O --- *)

let read_file path =
  if not (Sys.file_exists path) then Ok None
  else
    match
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with
    | exception Sys_error e -> Error e
    | s -> Ok (Some s)

let load_with parse path =
  let* contents = read_file path in
  match contents with
  | None -> Ok None
  | Some s -> (
      match Obs.Jsonv.parse s with
      | Error e -> Error (Printf.sprintf "%s: unparseable: %s" path e)
      | Ok j -> (
          match parse j with
          | Ok v -> Ok (Some v)
          | Error e -> Error (Printf.sprintf "%s: %s" path e)))

let save_id ~dir id =
  Atomicf.write ~op:"manifest.write" ~rename_point:"manifest.rename"
    (Filename.concat dir id_file) (id_to_json id)

let load_id ~dir = load_with id_of_json (Filename.concat dir id_file)

let save ~dir t =
  Obs.Trace.span ~cat:"store" "manifest.commit" (fun () ->
      Atomicf.write ~op:"manifest.write" ~rename_point:"manifest.rename"
        (Filename.concat dir file) (to_json t))

let load ~dir = load_with of_json (Filename.concat dir file)
