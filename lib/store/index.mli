(** Persistent indexes: sealed, sorted text multimaps from a key
    (issuer org, lint name, flaw class, domain label, U-label) to the
    corpus indices of matching certificates.

    Format, following the [Ctlog.Wire] sealed-line idiom:

    {v
      USTOREIDX1
      <key>\t<i1>,<i2>,...
      ...
      end <sha256 hex of every preceding byte>
    v}

    Keys are percent-encoded (['%'], tab, newline, CR, controls), lines
    are sorted by encoded key, and the trailing seal makes truncation
    or edits detectable.  Files are committed atomically via
    {!Atomicf} across the ["index.rename.*"] crash points. *)

val save : dir:string -> name:string -> (string * int list) list -> string * string
(** [save ~dir ~name entries] writes [name ^ ".idx"], sorting entries
    by key and indices ascending, and returns [(file, sha_hex)] for
    the manifest.  Duplicate keys are merged. *)

val load : dir:string -> file:string -> ((string * int list) list, string) result
(** Load and verify a sealed index file ([Error] on a missing seal,
    digest mismatch, or malformed line). *)

val sha_hex : dir:string -> file:string -> (string, string) result
(** The seal digest an intact file carries — what fsck compares against
    the manifest without decoding entries. *)
