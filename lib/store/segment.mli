(** Checksummed append-only segment files.

    A segment is the store's unit of durability: a fixed header,
    CRC-framed records, and (once complete) a sealed footer.

    {v
      header : "USTORESEG1\n"                        (11 bytes)
      record : 'R' | u32be len | u32be crc32(payload) | payload
      seal   : 'S' | u32be count | sha256(headers ^ u32be count)
    v}

    where [headers] is the concatenation of every record's 8-byte
    (len, crc) field pair in order.  The seal digest therefore pins
    the record count and every record's length and checksum without
    the writer having to buffer segment contents — O(records) memory,
    not O(bytes).

    Failure taxonomy (the durability contract of DESIGN.md §11):
    - a torn tail on an {e unsealed} segment is a normal crash artifact
      — repairable by truncating to [good_bytes];
    - a CRC mismatch, bad frame, bad header, bad seal, or trailing
      garbage is corruption — the segment is quarantined, never
      silently truncated.

    All writes flow through {!Chaos}, which may tear, shorten, or
    bit-flip them. *)

type writer

val create : string -> writer
(** Create (truncate) a segment file and write the header. *)

val reopen : string -> writer
(** Reopen an {e unsealed} segment for further appends.  The existing
    records are rescanned to restore the seal-digest accumulator.
    Raises [Invalid_argument] if the file is sealed or damaged — callers
    must normalize (truncate torn tails) first. *)

val append : writer -> string -> unit
(** Append one record.  May raise {!Chaos.Crashed}; the writer is then
    poisoned and every later write (including the implicit flush in
    {!close}) is suppressed, freezing the on-disk state at the simulated
    point of death. *)

val sync : writer -> unit
(** Flush buffered frames and [fsync]. *)

val seal : writer -> unit
(** Write the footer, flush, [fsync].  The segment is complete. *)

val close : writer -> unit
val count : writer -> int

val seal_hex : writer -> string
(** Hex seal digest over the records appended so far — after {!seal},
    the value a clean {!scan} reports, recorded in the manifest. *)

type problem =
  | Bad_header                               (** magic mismatch / too short *)
  | Torn_tail of { offset : int }            (** incomplete trailing record *)
  | Bad_frame of { offset : int }            (** unknown tag byte *)
  | Bad_crc of { record : int; offset : int }
  | Bad_seal                                 (** footer digest/count mismatch *)
  | Trailing of { offset : int }             (** bytes after a valid seal *)

val problem_name : problem -> string
val describe_problem : problem -> string

type scan = {
  payloads : string list;  (** intact records in order; [] unless kept *)
  count : int;             (** number of intact records *)
  sealed : bool;           (** footer present and verified *)
  good_bytes : int;        (** prefix length through the last intact record *)
  ends : int array;        (** byte offset just past each intact record —
                               [ends.(k)] is the truncation target that
                               keeps records [0..k] *)
  seal_hex : string;       (** digest over the intact records *)
  problem : problem option;
}

val scan : ?keep_payloads:bool -> string -> (scan, string) result
(** Read and verify a segment ([keep_payloads] defaults to [true];
    pass [false] for a memory-light integrity pass).  [Error] is an
    I/O-level failure (missing file, permission). *)

val truncate : string -> int -> unit
(** [truncate path n] cuts the file to its first [n] bytes — the torn
    tail repair, applied at [good_bytes]. *)
