(** The certificate store: crash-safe, append-only, span-organized.

    Layout of a store directory:

    {v
      store.id                     immutable identity (scale/seed/fingerprint)
      manifest.json                committed inventory + build state
      certs-<lo>-<hi>.seg          cert records for corpus span [lo, hi)
      rows-<fp8>-<lo>-<hi>.seg     analysis rows, lockstep with the certs;
                                   fp8 = first 8 hex of sha256(lint list)
      <name>.idx                   sealed indexes (issuer, lint, flaw,
                                   domain, ulabel)
      store-quarantine.jsonl       fsck/recovery corruption sidecar
      *.quarantined                segments moved aside by repair
    v}

    Invariants (the durability contract, DESIGN.md §11):
    - cert and rows segments for a span are appended in lockstep: record
      [k] of one corresponds to record [k] of the other, so after a
      crash the usable prefix is [min] of the two intact prefixes;
    - a {e sealed} pair covers its whole span; an unsealed pair is a
      crash artifact that {!recover} truncates, seals at its actual
      coverage, and adopts;
    - [manifest.json] only ever references sealed files, and is itself
      committed by atomic rename — so at every instant the manifest on
      disk describes only intact data. *)

exception Store_error of string
(** Unusable or incompatible store — binaries map this to exit 2. *)

type record =
  | Cert of { index : int; der : string }
  | Fault of { index : int; class_ : string; detail : string; der : string }
      (** A corrupt corpus delivery, kept so warm runs replay the fault
          ledger (class/detail feed quarantine + robustness reporting). *)

val index_of_record : record -> int

type t

val dir : t -> string
val id : t -> Manifest.id
val manifest : t -> Manifest.t

val create : dir:string -> scale:int -> seed:int -> fingerprint:string -> t
(** Open for building: make the directory, write [store.id] on first
    creation, and load (or initialize) the manifest.  Raises
    {!Store_error} when the directory already holds a store with a
    different identity. *)

val open_ro : dir:string -> t
(** Open an existing store read-only; {!Store_error} if absent or the
    identity/manifest are unreadable.  A store caught mid-build opens
    at its committed prefix: a valid identity with no committed
    manifest yet reads as an empty [`Building] store, and unsealed
    tail segments a writer is still appending stay invisible until
    the next atomic manifest commit. *)

val complete : t -> bool
(** Manifest state is [`Complete] and the sealed spans tile
    [0, scale). *)

val spans : t -> (Manifest.seg * Manifest.seg) list
(** Sealed (certs, rows) pairs, ascending [lo]. *)

(** {2 Recovery and building} *)

val recover : ?warn:(string -> unit) -> t -> lints:string -> unit
(** Normalize the directory after a possible crash: delete stray
    [.tmp] files, quarantine corrupt segments, truncate torn tails,
    align each cert/rows pair to its common prefix, seal adopted
    partial pairs at their actual coverage, drop pairs whose rows were
    built for a different lint set, and commit a [`Building] manifest
    listing exactly the usable spans.  Idempotent; safe to re-run after
    a crash during recovery itself. *)

val gaps : t -> scale:int -> (int * int) list
(** Maximal uncovered index ranges, ascending — the work a build pass
    must (re)generate; [[]] means every index is already stored. *)

type pair_writer
(** Lockstep writer for one span's cert + rows segments. *)

val start_span : t -> lints:string -> lo:int -> hi:int -> pair_writer
val append : pair_writer -> record -> row:string -> unit
(** Appends to both segments; periodically flushes + fsyncs both. *)

val finish_span : pair_writer -> Manifest.seg * Manifest.seg
(** Seal both segments and return their manifest descriptors. *)

val close_noerr : pair_writer -> unit
(** Close without sealing — the crash/error path. *)

type rows_writer
(** Writer for a replacement rows segment (incremental recompute): the
    new column is written beside the old one and only takes effect
    when {!commit} publishes a manifest referencing it. *)

val start_rows_span : t -> lints:string -> lo:int -> hi:int -> rows_writer
val append_row : rows_writer -> string -> unit
val finish_rows_span : rows_writer -> Manifest.seg
val close_rows_noerr : rows_writer -> unit

val commit : t -> Manifest.t -> unit
(** Atomically publish a new manifest (the only mutation readers can
    observe), then delete files the new manifest no longer references
    (old rows columns, stale indexes). *)

(** {2 Reading} *)

val iter_pair : t -> Manifest.seg * Manifest.seg -> (record -> string -> unit) -> unit
(** Iterate one sealed (certs, rows) pair in record order, verifying
    seals and CRCs up front; raises {!Store_error} on damage. *)

val iter_pairs : t -> (record -> string -> unit) -> unit
(** Iterate sealed spans in ascending index order, verifying CRCs as a
    side effect; raises {!Store_error} on damage discovered mid-read. *)

val load_index : t -> string -> ((string * int list) list, string) result
(** Load a named index (e.g. ["issuer"]) via the manifest. *)

val meta : t -> string -> string option
(** A manifest meta value (e.g. ["coverage"]). *)

(** {2 fsck} *)

type issue = {
  file : string;
  problem : string;  (** e.g. ["torn_tail"], ["bad_crc"], ["missing"] *)
  detail : string;
  repair : string;  (** what repair does: ["truncate"], ["quarantine"],
                        ["delete"], ["rebuild-manifest"], ["none"] *)
}

type fsck_report = {
  issues : issue list;
  spans_ok : int;  (** intact sealed cert spans *)
  spans_expected : int;  (** spans the manifest references *)
  store_state : [ `Complete | `Building | `Absent ];
  usable : bool;  (** some intact cert data (or a valid empty store) remains *)
  repaired : bool;
}

val fsck : ?repair:bool -> dir:string -> unit -> fsck_report
(** Verify everything: identity, manifest, every referenced segment's
    seal and CRCs, every index seal, strays.  With [repair]: truncate
    torn tails, quarantine corrupt segments (renamed to
    [*.quarantined] and logged to [store-quarantine.jsonl]), delete
    strays, and rewrite the manifest to reference only intact files
    (demoting [`Complete] to [`Building] when coverage was lost).
    Never raises on corruption — corruption is the expected input. *)

val prewarm : unit -> unit
(** Force lazy tables (CRC, counters) before [Domain.spawn]. *)
