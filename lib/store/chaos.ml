(* Seeded write-path fault injection.  Mirrors Net.Fault's discipline:
   every probabilistic decision is a pure function of (seed, op,
   attempt), so a chaos campaign at a fixed seed replays the exact same
   fault schedule.  On top of that, [arm_crash] kills deterministically
   at a named crash point's Nth occurrence, which is what the recovery
   matrix in the test suite drives. *)

exception Crashed of string

type kind = Torn_write | Short_write | Bit_flip | Crash

let all_kinds = [ Torn_write; Short_write; Bit_flip; Crash ]

let kind_name = function
  | Torn_write -> "torn_write"
  | Short_write -> "short_write"
  | Bit_flip -> "bit_flip"
  | Crash -> "crash"

let kind_of_name = function
  | "torn_write" -> Some Torn_write
  | "short_write" -> Some Short_write
  | "bit_flip" -> Some Bit_flip
  | "crash" -> Some Crash
  | _ -> None

type plan = { seed : int; rate : float; kinds : kind list }

let crash_points =
  [
    "segment.tear";
    "segment.append.after";
    "segment.seal.before";
    "segment.seal.after";
    "index.rename.before";
    "index.rename.after";
    "manifest.rename.before";
    "manifest.rename.after";
  ]

(* Process-global armed state.  Shard writers run on worker domains, so
   both the armed configuration and the occurrence counters live behind
   one mutex; the counters themselves make occurrence numbering global
   across domains (which is what "kill at the Nth seal" means). *)
type armed = {
  mutable plan : plan option;
  mutable crash : (string * int) option;  (* point, 1-based occurrence *)
  counts : (string, int) Hashtbl.t;       (* per op/point hit counters *)
  mutable crash_pending : bool;           (* a sampled Crash kind waits
                                             for the next crash point *)
}

let lock = Mutex.create ()
let state = { plan = None; crash = None; counts = Hashtbl.create 16; crash_pending = false }

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let arm plan =
  with_lock (fun () ->
      state.plan <- Some plan;
      state.crash_pending <- false;
      Hashtbl.reset state.counts)

let arm_crash ~point ~occurrence =
  with_lock (fun () ->
      state.crash <- Some (point, max 1 occurrence);
      state.crash_pending <- false;
      Hashtbl.reset state.counts)

let disarm () =
  with_lock (fun () ->
      state.plan <- None;
      state.crash <- None;
      state.crash_pending <- false;
      Hashtbl.reset state.counts)

let bump name =
  let n = 1 + Option.value ~default:0 (Hashtbl.find_opt state.counts name) in
  Hashtbl.replace state.counts name n;
  n

(* FNV-1a, same constants as Net.Fault: a stable string hash so fault
   schedules survive compiler upgrades. *)
let fnv1a s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    s;
  Int64.to_int (Int64.logand !h 0x3fffffffffffffffL)

type action = Pass | Prefix of { len : int; crash : bool } | Flip of { offset : int }

(* A torn/short prefix always lands at least one byte short of the full
   frame and keeps at least one byte when the frame is non-trivial, so
   the injected state is genuinely partial. *)
let prefix_len g len =
  if len <= 1 then 0 else 1 + Ucrypto.Prng.int g (len - 1)

let plan_write ~op ~len =
  with_lock (fun () ->
      let attempt = bump ("write:" ^ op) in
      (* Deterministic tear: the armed "segment.tear" kill applies to
         segment appends only, counted on the shared point counter so
         occurrence numbering matches the other crash points. *)
      match state.crash with
      | Some ("segment.tear", occ) when op = "segment.append" ->
          let hit = bump "segment.tear" in
          if hit = occ then
            let g = Ucrypto.Prng.of_pair (fnv1a ("tear:" ^ op)) attempt in
            Prefix { len = prefix_len g len; crash = true }
          else Pass
      | _ -> (
          match state.plan with
          | None -> Pass
          | Some plan ->
              let g =
                Ucrypto.Prng.of_pair (plan.seed lxor fnv1a op) attempt
              in
              if plan.rate <= 0.0 || plan.kinds = [] then Pass
              else if Ucrypto.Prng.float g >= plan.rate then Pass
              else
                match Ucrypto.Prng.pick_list g plan.kinds with
                | Torn_write -> Prefix { len = prefix_len g len; crash = true }
                | Short_write -> Prefix { len = prefix_len g len; crash = false }
                | Bit_flip ->
                    Flip { offset = (if len = 0 then 0 else Ucrypto.Prng.int g len) }
                | Crash ->
                    state.crash_pending <- true;
                    Pass))

let point name =
  let killed =
    with_lock (fun () ->
        let hit = bump name in
        match state.crash with
        | Some (p, occ) when p = name && hit = occ -> true
        | _ ->
            if state.crash_pending then (
              state.crash_pending <- false;
              true)
            else false)
  in
  if killed then (
    Obs.Trace.instant ~cat:"store" ("chaos.crash:" ^ name);
    raise (Crashed name))

let flip_bit_in_file ~seed path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  if len = 0 then invalid_arg "Chaos.flip_bit_in_file: empty file";
  let g = Ucrypto.Prng.of_pair (fnv1a path) seed in
  let lo = if len > 32 then 16 else 0 in
  let offset = lo + Ucrypto.Prng.int g (len - lo) in
  let bit = Ucrypto.Prng.int g 8 in
  let b = Bytes.of_string s in
  Bytes.set b offset (Char.chr (Char.code (Bytes.get b offset) lxor (1 lsl bit)));
  let oc = open_out_bin path in
  output_bytes oc b;
  close_out oc;
  offset
