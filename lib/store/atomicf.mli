(** Atomic whole-file commits for the store: write [path].tmp through
    the {!Chaos} write hook, fsync, then rename into place across a
    pair of declared crash points.  A crash at any point leaves either
    the old file, the new file, or a stray [.tmp] — never a torn
    destination.  Stray [.tmp] files are crash artifacts that recovery
    deletes. *)

val write : op:string -> rename_point:string -> string -> string -> unit
(** [write ~op ~rename_point path content]: [op] names the Chaos write
    operation (e.g. ["manifest.write"]); the crash points hit are
    [rename_point ^ ".before"] and [rename_point ^ ".after"]. *)

val commits : Obs.Counter.t
(** [unicert_store_commits_total], bumped per completed rename. *)
