(** Store metadata: the immutable identity file and the mutable
    manifest, both committed atomically (tmp + rename, the
    {!Faults.Checkpoint} idiom) through {!Chaos} crash points.

    [store.id] is written once when the store is created and never
    rewritten: it pins what the store {e is} — scale, seed and the
    source fingerprint — so a crash can never leave identity in doubt.
    [manifest.json] is rewritten on every commit and pins what the
    store currently {e holds}: segment and index inventories with
    their seal digests, the lint set the rows column encodes, and the
    build state.  Losing the manifest is therefore survivable (sealed
    segments are self-describing enough to salvage); losing [store.id]
    is not, but its write window is a few hundred bytes at creation
    time. *)

type id = { scale : int; seed : int; fingerprint : string }

type seg = { file : string; lo : int; hi : int; records : int; seal : string }
(** One sealed segment: [file] relative to the store dir, covering
    corpus indices [lo, hi), holding [records] records, with seal
    digest [seal] (hex). *)

type t = {
  state : [ `Building | `Complete ];
  lints : string;  (** ';'-joined lint names the rows column encodes *)
  segments : seg list;  (** cert segments, ascending [lo], disjoint *)
  rows : seg list;  (** rows-column segments, spans mirror [segments] *)
  indexes : (string * string * string) list;  (** name, file, sha256 hex *)
  meta : (string * string) list;  (** free-form (coverage, bench notes) *)
}

val version : int

val id_file : string
val file : string
(** Basenames: ["store.id"], ["manifest.json"]. *)

val save_id : dir:string -> id -> unit
val load_id : dir:string -> (id option, string) result
(** [Ok None] — file absent; [Error] — present but unreadable or wrong
    version. *)

val save : dir:string -> t -> unit
(** Serialize, write [manifest.json.tmp] (a {!Chaos} ["manifest.write"]
    op), fsync, then rename across the ["manifest.rename.before"] /
    ["manifest.rename.after"] crash points. *)

val load : dir:string -> (t option, string) result
