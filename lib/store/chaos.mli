(** Seeded fault injection for the on-disk store.

    Durability must be a tested property, not an assumption: this
    module lets tests inject exactly the failure modes a crash or a
    lying disk produces — torn writes (a prefix of a planned write
    lands, then the process dies), short writes (a prefix lands and the
    writer never notices), bit flips (the write lands, one bit
    differs), and process death at named crash points before/after each
    atomic rename.

    Like {!Net.Fault}, every probabilistic decision is a pure function
    of [(seed, op, attempt)], so a chaos campaign replays identically
    at the same seed.  Deterministic kills at a named {!crash_points}
    occurrence drive the crash-point recovery matrix.

    The injected "kill" is the {!Crashed} exception: writers poison
    themselves before raising so later buffered bytes can never reach
    the file — the on-disk state when [Crashed] escapes is exactly the
    state a real [SIGKILL] would have left. *)

exception Crashed of string
(** Simulated process death; the payload names the crash point or the
    torn write operation. *)

type kind =
  | Torn_write   (** seeded prefix of the frame lands, then {!Crashed} *)
  | Short_write  (** seeded prefix lands silently; the writer continues *)
  | Bit_flip     (** the full frame lands with one seeded bit flipped *)
  | Crash        (** {!Crashed} at the next declared crash point *)

val all_kinds : kind list
val kind_name : kind -> string
val kind_of_name : string -> kind option

type plan = { seed : int; rate : float; kinds : kind list }
(** Probabilistic chaos: each write operation faults with probability
    [rate], drawing the kind uniformly from [kinds]. *)

val arm : plan -> unit
(** Enable probabilistic injection (process-global, domain-safe). *)

val arm_crash : point:string -> occurrence:int -> unit
(** Kill deterministically: raise {!Crashed} at the [occurrence]-th hit
    of crash point [point] (1-based).  [point = "segment.tear"] is
    special: the [occurrence]-th segment append is torn (a seeded
    prefix of the frame is written) before the kill. *)

val disarm : unit -> unit
(** Disable all injection and reset occurrence counters. *)

val crash_points : string list
(** Every declared crash point, in the order a build hits them:
    [segment.tear], [segment.append.after], [segment.seal.before],
    [segment.seal.after], [index.rename.before], [index.rename.after],
    [manifest.rename.before], [manifest.rename.after].  The recovery
    matrix kills at each of these and asserts byte-identical results
    after recovery. *)

(** {2 Hooks (called by the store layers)} *)

type action =
  | Pass                               (** write the frame as planned *)
  | Prefix of { len : int; crash : bool }
      (** write only the first [len] bytes; kill afterwards if [crash] *)
  | Flip of { offset : int }           (** flip one bit at byte [offset] *)

val plan_write : op:string -> len:int -> action
(** Decide the fate of a [len]-byte write for operation [op]
    (["segment.append"], ["segment.seal"], ["manifest.write"],
    ["index.write"]).  Pure in [(seed, op, attempt)]; each call
    advances the op's attempt counter. *)

val point : string -> unit
(** Declare passage through a named crash point; raises {!Crashed} when
    an armed kill matches. *)

val flip_bit_in_file : seed:int -> string -> int
(** Test helper: flip one seeded bit of an existing file in place
    (never inside the first 16 header bytes when the file is longer
    than 32 bytes, so header-vs-payload corruption stays distinct).
    Returns the byte offset flipped. *)
