exception Store_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Store_error s)) fmt

let reads =
  Obs.Registry.counter ~help:"Records read back from the store" "unicert_store_reads_total"

let corruptions =
  Obs.Registry.counter ~help:"Corruptions detected in store files"
    "unicert_store_corruptions_detected_total"

let repairs =
  Obs.Registry.counter ~help:"Store repairs applied (truncate/quarantine/delete)"
    "unicert_store_repairs_total"

(* --- record encoding --- *)

type record =
  | Cert of { index : int; der : string }
  | Fault of { index : int; class_ : string; detail : string; der : string }

let index_of_record = function Cert { index; _ } | Fault { index; _ } -> index

let u32be n =
  let b = Bytes.create 4 in
  Bytes.set b 0 (Char.chr ((n lsr 24) land 0xFF));
  Bytes.set b 1 (Char.chr ((n lsr 16) land 0xFF));
  Bytes.set b 2 (Char.chr ((n lsr 8) land 0xFF));
  Bytes.set b 3 (Char.chr (n land 0xFF));
  Bytes.unsafe_to_string b

let u16be n = String.init 2 (fun i -> Char.chr ((n lsr (8 * (1 - i))) land 0xFF))

let ru32 s pos =
  (Char.code s.[pos] lsl 24)
  lor (Char.code s.[pos + 1] lsl 16)
  lor (Char.code s.[pos + 2] lsl 8)
  lor Char.code s.[pos + 3]

let ru16 s pos = (Char.code s.[pos] lsl 8) lor Char.code s.[pos + 1]

let encode_record = function
  | Cert { index; der } -> "C" ^ u32be index ^ der
  | Fault { index; class_; detail; der } ->
      "X" ^ u32be index ^ u16be (String.length class_) ^ class_
      ^ u32be (String.length detail) ^ detail ^ der

let decode_record s =
  try
    match s.[0] with
    | 'C' -> Ok (Cert { index = ru32 s 1; der = String.sub s 5 (String.length s - 5) })
    | 'X' ->
        let index = ru32 s 1 in
        let clen = ru16 s 5 in
        let class_ = String.sub s 7 clen in
        let dlen = ru32 s (7 + clen) in
        let detail = String.sub s (11 + clen) dlen in
        let dp = 11 + clen + dlen in
        Ok (Fault { index; class_; detail; der = String.sub s dp (String.length s - dp) })
    | c -> Error (Printf.sprintf "unknown record kind %C" c)
  with Invalid_argument _ -> Error "short record"

(* --- file naming --- *)

let fp8_of_lints lints = String.sub (Ucrypto.Sha256.hex lints) 0 8
let cert_file ~lo ~hi = Printf.sprintf "certs-%d-%d.seg" lo hi
let rows_file ~fp8 ~lo ~hi = Printf.sprintf "rows-%s-%d-%d.seg" fp8 lo hi

let parse_cert_file name =
  try Scanf.sscanf name "certs-%d-%d.seg%!" (fun lo hi -> Some (lo, hi)) with _ -> None

let parse_rows_file name =
  try
    Scanf.sscanf name "rows-%s@-%d-%d.seg%!" (fun fp8 lo hi ->
        if String.length fp8 = 8 then Some (fp8, lo, hi) else None)
  with _ -> None

let quarantine_file = "store-quarantine.jsonl"

(* --- store handle --- *)

type t = { dir : string; id_ : Manifest.id; mutable man : Manifest.t }

let dir t = t.dir
let id t = t.id_
let manifest t = t.man

let empty_manifest lints : Manifest.t =
  { state = `Building; lints; segments = []; rows = []; indexes = []; meta = [] }

let rec mkdir_p path =
  if path = "" || path = "." || path = "/" || Sys.file_exists path then ()
  else (
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())

let has_store_files dir =
  Sys.file_exists dir
  && Array.exists
       (fun f ->
         parse_cert_file f <> None || parse_rows_file f <> None || f = Manifest.file)
       (Sys.readdir dir)

let create ~dir ~scale ~seed ~fingerprint =
  mkdir_p dir;
  let want : Manifest.id = { scale; seed; fingerprint } in
  (match Manifest.load_id ~dir with
  | Error e -> fail "store %s: identity unreadable (%s); run `unicert-store fsck`" dir e
  | Ok (Some have) ->
      if have <> want then
        fail
          "store %s holds a different corpus (scale %d seed %d, wanted scale %d seed %d%s)"
          dir have.scale have.seed scale seed
          (if have.fingerprint <> fingerprint then "; source fingerprint differs" else "")
  | Ok None ->
      if has_store_files dir then
        fail "store %s: data present but store.id missing; run `unicert-store fsck`" dir;
      Manifest.save_id ~dir want);
  let man =
    match Manifest.load ~dir with
    | Ok (Some m) -> m
    | Ok None -> empty_manifest ""
    | Error e -> fail "store %s: manifest unreadable (%s); run `unicert-store fsck --repair`" dir e
  in
  { dir; id_ = want; man }

let open_ro ~dir =
  if not (Sys.file_exists dir) then fail "store %s: no such directory" dir;
  match Manifest.load_id ~dir with
  | Error e -> fail "store %s: identity unreadable (%s)" dir e
  | Ok None -> fail "store %s: not a store (store.id missing)" dir
  | Ok (Some id_) -> (
      match Manifest.load ~dir with
      | Error e -> fail "store %s: manifest unreadable (%s); run `unicert-store fsck --repair`" dir e
      | Ok None ->
          (* A valid identity with no committed manifest is an in-flight
             build caught before its first commit (fsck calls it
             usable).  Readers agree: the committed prefix is simply
             empty — any unsealed tail segments stay invisible until a
             writer commits them. *)
          { dir; id_; man = empty_manifest "" }
      | Ok (Some man) -> { dir; id_; man })

let sorted_segments (man : Manifest.t) =
  List.sort (fun (a : Manifest.seg) b -> compare a.lo b.lo) man.segments

let complete t =
  t.man.state = `Complete
  &&
  let rec tiles at = function
    | [] -> at = t.id_.scale
    | (s : Manifest.seg) :: rest -> s.lo = at && tiles s.hi rest
  in
  tiles 0 (sorted_segments t.man)

let spans t =
  sorted_segments t.man
  |> List.map (fun (c : Manifest.seg) ->
         match
           List.find_opt (fun (r : Manifest.seg) -> r.lo = c.lo && r.hi = c.hi) t.man.rows
         with
         | Some r -> (c, r)
         | None -> fail "store %s: span [%d,%d) has no rows column" t.dir c.lo c.hi)

let gaps t ~scale =
  let rec walk at acc = function
    | [] -> List.rev (if at < scale then (at, scale) :: acc else acc)
    | (s : Manifest.seg) :: rest ->
        let acc = if s.lo > at then (at, s.lo) :: acc else acc in
        walk (max at s.hi) acc rest
  in
  walk 0 [] (sorted_segments t.man)

(* --- quarantine sidecar (JSONL, same convention as Faults.Quarantine) --- *)

let note_quarantine dir ~file ~reason ~detail =
  let oc =
    open_out_gen [ Open_wronly; Open_creat; Open_append; Open_binary ] 0o644
      (Filename.concat dir quarantine_file)
  in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      Printf.fprintf oc {|{"file":%s,"reason":%s,"detail":%s}|} (Obs.Jsonv.escape file)
        (Obs.Jsonv.escape reason) (Obs.Jsonv.escape detail);
      output_char oc '\n')

let quarantine_seg dir ~file ~reason ~detail =
  Obs.Counter.inc corruptions;
  Obs.Counter.inc repairs;
  Obs.Trace.instant ~cat:"store" ~args:[ ("file", Str file); ("reason", Str reason) ]
    "store.quarantine";
  note_quarantine dir ~file ~reason ~detail;
  let path = Filename.concat dir file in
  if Sys.file_exists path then Sys.rename path (path ^ ".quarantined")

let remove_if_exists path = if Sys.file_exists path then Sys.remove path

(* --- lockstep span writers --- *)

let sync_interval = 4096

type pair_writer = {
  pt : t;
  plo : int;
  phi : int;
  cfile : string;
  rfile : string;
  cw : Segment.writer;
  rw : Segment.writer;
  mutable pn : int;
}

let start_span t ~lints ~lo ~hi =
  let cfile = cert_file ~lo ~hi and rfile = rows_file ~fp8:(fp8_of_lints lints) ~lo ~hi in
  {
    pt = t;
    plo = lo;
    phi = hi;
    cfile;
    rfile;
    cw = Segment.create (Filename.concat t.dir cfile);
    rw = Segment.create (Filename.concat t.dir rfile);
    pn = 0;
  }

let append pw record ~row =
  Segment.append pw.cw (encode_record record);
  Segment.append pw.rw row;
  pw.pn <- pw.pn + 1;
  if pw.pn mod sync_interval = 0 then (
    Segment.sync pw.cw;
    Segment.sync pw.rw)

let finish_span pw =
  Segment.seal pw.cw;
  Segment.seal pw.rw;
  Segment.close pw.cw;
  Segment.close pw.rw;
  ( ({ file = pw.cfile; lo = pw.plo; hi = pw.phi; records = pw.pn; seal = Segment.seal_hex pw.cw }
      : Manifest.seg),
    ({ file = pw.rfile; lo = pw.plo; hi = pw.phi; records = pw.pn; seal = Segment.seal_hex pw.rw }
      : Manifest.seg) )

let close_noerr pw =
  (try Segment.close pw.cw with _ -> ());
  try Segment.close pw.rw with _ -> ()

type rows_writer = { rt : string; rlo : int; rhi : int; rfile2 : string; w : Segment.writer; mutable rn : int }

let start_rows_span t ~lints ~lo ~hi =
  let file = rows_file ~fp8:(fp8_of_lints lints) ~lo ~hi in
  (* A same-fp8 rows file may already exist when only indexes changed;
     the replacement is written under a distinct suffix-free name only
     if free, otherwise reuse forces ".new". *)
  let file = if Sys.file_exists (Filename.concat t.dir file) then file ^ ".new" else file in
  { rt = t.dir; rlo = lo; rhi = hi; rfile2 = file; w = Segment.create (Filename.concat t.dir file); rn = 0 }

let append_row rw row =
  Segment.append rw.w row;
  rw.rn <- rw.rn + 1;
  if rw.rn mod sync_interval = 0 then Segment.sync rw.w

let finish_rows_span rw =
  Segment.seal rw.w;
  Segment.close rw.w;
  ({ file = rw.rfile2; lo = rw.rlo; hi = rw.rhi; records = rw.rn; seal = Segment.seal_hex rw.w }
    : Manifest.seg)

let close_rows_noerr rw = try Segment.close rw.w with _ -> ()

(* --- commit: publish a manifest, then drop unreferenced files --- *)

let commit t man =
  Manifest.save ~dir:t.dir man;
  t.man <- man;
  let referenced =
    Manifest.id_file :: Manifest.file :: quarantine_file
    :: (List.map (fun (s : Manifest.seg) -> s.file) (man.segments @ man.rows)
       @ List.map (fun (_, f, _) -> f) man.indexes)
  in
  Array.iter
    (fun f ->
      let stale_data = parse_cert_file f <> None || parse_rows_file f <> None in
      let stale_rows_tmp = Filename.check_suffix f ".seg.new" in
      let stale_idx = Filename.check_suffix f ".idx" in
      if (stale_data || stale_idx || stale_rows_tmp) && not (List.mem f referenced) then
        remove_if_exists (Filename.concat t.dir f))
    (Sys.readdir t.dir)

(* --- reading --- *)

let scan_pair t (c : Manifest.seg) (r : Manifest.seg) =
  let check (s : Manifest.seg) =
    match Segment.scan (Filename.concat t.dir s.file) with
    | Error e -> fail "store %s: %s: %s" t.dir s.file e
    | Ok sc ->
        if (not sc.sealed) || sc.problem <> None || sc.count <> s.records
           || sc.seal_hex <> s.seal
        then (
          Obs.Counter.inc corruptions;
          Obs.Trace.instant ~cat:"store" ~args:[ ("file", Str s.file) ] "store.corrupt";
          fail "store %s: %s is damaged (%s); run `unicert-store fsck --repair`" t.dir s.file
            (match sc.problem with
            | Some p -> Segment.describe_problem p
            | None -> "seal or count mismatch"))
        else sc.payloads
  in
  (check c, check r)

let iter_pair t ((c : Manifest.seg), r) f =
  Obs.Trace.span ~cat:"store" "store.read" (fun () ->
      let certs, rows = scan_pair t c r in
      List.iter2
        (fun cp rp ->
          match decode_record cp with
          | Error e -> fail "store %s: %s: undecodable record (%s)" t.dir c.file e
          | Ok record ->
              Obs.Counter.inc reads;
              f record rp)
        certs rows)

let iter_pairs t f = List.iter (fun pr -> iter_pair t pr f) (spans t)

let load_index t name =
  match List.find_opt (fun (n, _, _) -> n = name) t.man.indexes with
  | None -> Error (Printf.sprintf "no %S index (store incomplete or never indexed)" name)
  | Some (_, file, _) -> Index.load ~dir:t.dir ~file

let meta t k = List.assoc_opt k t.man.meta

(* --- recovery --- *)

(* Normalize one unsealed (or damaged) cert/rows pair found on disk.
   Returns the adopted manifest descriptors, or None when the pair was
   quarantined or deleted. *)
let recover_pair ~warn dir ~fp8 ~lo ~hi ~cfile ~rfile =
  let cpath = Filename.concat dir cfile and rpath = Filename.concat dir rfile in
  match (Segment.scan cpath, Segment.scan ~keep_payloads:false rpath) with
  | Error e, _ | _, Error e ->
      warn (Printf.sprintf "store: cannot read span [%d,%d): %s" lo hi e);
      None
  | Ok csc, Ok rsc -> (
      let corrupt (p : Segment.problem) =
        match p with
        | Segment.Torn_tail _ -> false
        | Bad_header | Bad_frame _ | Bad_crc _ | Bad_seal | Trailing _ -> true
      in
      let is_corrupt sc =
        match sc.Segment.problem with Some p -> corrupt p | None -> false
      in
      if is_corrupt csc || is_corrupt rsc then (
        let describe sc =
          match sc.Segment.problem with
          | Some p -> Segment.describe_problem p
          | None -> "lockstep mate corrupt"
        in
        warn (Printf.sprintf "store: quarantining corrupt span [%d,%d)" lo hi);
        quarantine_seg dir ~file:cfile ~reason:(if is_corrupt csc then Segment.problem_name (Option.get csc.problem) else "lockstep_mate") ~detail:(describe csc);
        quarantine_seg dir ~file:rfile ~reason:(if is_corrupt rsc then Segment.problem_name (Option.get rsc.problem) else "lockstep_mate") ~detail:(describe rsc);
        None)
      else if csc.sealed && rsc.sealed && csc.count = rsc.count then
        (* Intact committed span: adopt as-is. *)
        Some
          ( ({ file = cfile; lo; hi; records = csc.count; seal = csc.seal_hex } : Manifest.seg),
            ({ file = rfile; lo; hi; records = rsc.count; seal = rsc.seal_hex } : Manifest.seg) )
      else
        (* Crash artifact: align both files to the common intact record
           prefix, then seal the pair at its actual coverage. *)
        let n = min csc.count rsc.count in
        if n = 0 then (
          warn (Printf.sprintf "store: dropping empty crash remnant for span [%d,%d)" lo hi);
          Obs.Counter.inc repairs;
          remove_if_exists cpath;
          remove_if_exists rpath;
          None)
        else
          match decode_record (List.nth csc.payloads (n - 1)) with
          | Error e ->
              warn (Printf.sprintf "store: span [%d,%d) undecodable (%s); quarantining" lo hi e);
              quarantine_seg dir ~file:cfile ~reason:"undecodable_record" ~detail:e;
              quarantine_seg dir ~file:rfile ~reason:"lockstep_mate" ~detail:e;
              None
          | Ok last ->
              let hi' = index_of_record last + 1 in
              Obs.Counter.inc repairs;
              Obs.Trace.instant ~cat:"store"
                ~args:[ ("lo", Int lo); ("hi", Int hi'); ("records", Int n) ]
                "store.adopt";
              warn
                (Printf.sprintf "store: adopting partial span [%d,%d) as [%d,%d) (%d records)"
                   lo hi lo hi' n);
              Segment.truncate cpath csc.ends.(n - 1);
              Segment.truncate rpath rsc.ends.(n - 1);
              let reseal path =
                let w = Segment.reopen path in
                Segment.seal w;
                Segment.close w;
                Segment.seal_hex w
              in
              let cseal = reseal cpath and rseal = reseal rpath in
              let cfile' = cert_file ~lo ~hi:hi'
              and rfile' = rows_file ~fp8 ~lo ~hi:hi' in
              if
                hi' <> hi
                && (Sys.file_exists (Filename.concat dir cfile')
                   || Sys.file_exists (Filename.concat dir rfile'))
              then (
                (* Another pair already owns the shrunken span name —
                   this remnant is redundant. *)
                remove_if_exists cpath;
                remove_if_exists rpath;
                None)
              else (
                if hi' <> hi then (
                  Sys.rename cpath (Filename.concat dir cfile');
                  Sys.rename rpath (Filename.concat dir rfile'));
                Some
                  ( ({ file = cfile'; lo; hi = hi'; records = n; seal = cseal } : Manifest.seg),
                    ({ file = rfile'; lo; hi = hi'; records = n; seal = rseal } : Manifest.seg) )))

let recover ?(warn = fun _ -> ()) t ~lints =
  Obs.Trace.span ~cat:"store" "store.recover" (fun () ->
      let fp8 = fp8_of_lints lints in
      let files = Sys.readdir t.dir in
      (* Stray .tmp files are interrupted atomic commits. *)
      Array.iter
        (fun f ->
          if Filename.check_suffix f ".tmp" then (
            warn (Printf.sprintf "store: removing interrupted commit %s" f);
            Obs.Counter.inc repairs;
            remove_if_exists (Filename.concat t.dir f)))
        files;
      let certs = Array.to_list files |> List.filter_map (fun f ->
          Option.map (fun (lo, hi) -> (lo, hi, f)) (parse_cert_file f))
      in
      let rows = Array.to_list files |> List.filter_map (fun f ->
          Option.map (fun (fp, lo, hi) -> (fp, lo, hi, f)) (parse_rows_file f))
      in
      let pairs, unpaired_certs =
        List.partition_map
          (fun (lo, hi, cfile) ->
            match
              List.find_opt (fun (fp, lo', hi', _) -> fp = fp8 && lo' = lo && hi' = hi) rows
            with
            | Some (_, _, _, rfile) -> Left (lo, hi, cfile, rfile)
            | None -> Right cfile)
          certs
      in
      let paired_rows = List.map (fun (_, _, _, r) -> r) pairs in
      (* Cert segments without a current-lint rows mate (and vice versa)
         cannot be absorbed; the corpus regenerates deterministically,
         so drop them rather than carry dead weight. *)
      List.iter
        (fun f ->
          warn (Printf.sprintf "store: dropping unpaired segment %s" f);
          Obs.Counter.inc repairs;
          remove_if_exists (Filename.concat t.dir f))
        (unpaired_certs
        @ List.filter_map
            (fun (_, _, _, f) -> if List.mem f paired_rows then None else Some f)
            rows);
      let adopted =
        List.filter_map
          (fun (lo, hi, cfile, rfile) -> recover_pair ~warn t.dir ~fp8 ~lo ~hi ~cfile ~rfile)
          pairs
        |> List.sort (fun ((a : Manifest.seg), _) (b, _) -> compare (a.lo, a.hi) (b.lo, b.hi))
      in
      (* Spans from runs with different shard layouts can overlap after
         partial adoption; keep the first, drop the rest. *)
      let adopted =
        List.fold_left
          (fun (keep, covered) ((c : Manifest.seg), (r : Manifest.seg)) ->
            if c.lo >= covered then (((c, r) :: keep, c.hi))
            else (
              warn (Printf.sprintf "store: dropping overlapping span [%d,%d)" c.lo c.hi);
              Obs.Counter.inc repairs;
              remove_if_exists (Filename.concat t.dir c.file);
              remove_if_exists (Filename.concat t.dir r.file);
              (keep, covered)))
          ([], 0) adopted
        |> fst |> List.rev
      in
      let man =
        {
          (empty_manifest lints) with
          segments = List.map fst adopted;
          rows = List.map snd adopted;
        }
      in
      commit t man)

(* --- fsck --- *)

type issue = { file : string; problem : string; detail : string; repair : string }

type fsck_report = {
  issues : issue list;
  spans_ok : int;
  spans_expected : int;
  store_state : [ `Complete | `Building | `Absent ];
  usable : bool;
  repaired : bool;
}

let fsck ?(repair = false) ~dir () =
  Obs.Trace.span ~cat:"store" "store.fsck" (fun () ->
      if not (Sys.file_exists dir) then
        { issues = []; spans_ok = 0; spans_expected = 0; store_state = `Absent; usable = false; repaired = false }
      else
        let issues = ref [] in
        let flag ~file ~problem ~detail ~repair:r =
          Obs.Counter.inc corruptions;
          Obs.Trace.instant ~cat:"store"
            ~args:[ ("file", Str file); ("problem", Str problem) ]
            "store.fsck.issue";
          issues := { file; problem; detail; repair = r } :: !issues
        in
        let id_ok =
          match Manifest.load_id ~dir with
          | Ok (Some _) -> true
          | Ok None ->
              if has_store_files dir then
                flag ~file:Manifest.id_file ~problem:"missing" ~detail:"store data without identity"
                  ~repair:"none";
              false
          | Error e ->
              flag ~file:Manifest.id_file ~problem:"corrupt" ~detail:e ~repair:"none";
              false
        in
        if (not id_ok) && not (has_store_files dir) then
          { issues = List.rev !issues; spans_ok = 0; spans_expected = 0; store_state = `Absent; usable = false; repaired = false }
        else begin
          let man, man_ok =
            match Manifest.load ~dir with
            | Ok (Some m) -> (m, true)
            | Ok None ->
                flag ~file:Manifest.file ~problem:"missing" ~detail:"" ~repair:"rebuild-manifest";
                (empty_manifest "", false)
            | Error e ->
                flag ~file:Manifest.file ~problem:"corrupt" ~detail:e ~repair:"rebuild-manifest";
                (empty_manifest "", false)
          in
          let files = Sys.readdir dir in
          Array.iter
            (fun f ->
              if Filename.check_suffix f ".tmp" then
                flag ~file:f ~problem:"stray_tmp" ~detail:"interrupted atomic commit"
                  ~repair:"delete")
            files;
          (* Verify every manifest-referenced segment pair. *)
          let good_pairs = ref [] in
          let scan_listed (s : Manifest.seg) =
            let path = Filename.concat dir s.file in
            if not (Sys.file_exists path) then (
              flag ~file:s.file ~problem:"missing" ~detail:"referenced by manifest"
                ~repair:"drop-from-manifest";
              false)
            else
              match Segment.scan ~keep_payloads:false path with
              | Error e ->
                  flag ~file:s.file ~problem:"unreadable" ~detail:e ~repair:"quarantine";
                  false
              | Ok sc ->
                  if sc.problem <> None then (
                    flag ~file:s.file
                      ~problem:(Segment.problem_name (Option.get sc.problem))
                      ~detail:(Segment.describe_problem (Option.get sc.problem))
                      ~repair:"quarantine";
                    false)
                  else if not sc.sealed then (
                    flag ~file:s.file ~problem:"unsealed" ~detail:"manifest references an unsealed segment"
                      ~repair:"quarantine";
                    false)
                  else if sc.count <> s.records || sc.seal_hex <> s.seal then (
                    flag ~file:s.file ~problem:"seal_mismatch"
                      ~detail:
                        (Printf.sprintf "manifest expects %d records seal %s…, file has %d seal %s…"
                           s.records
                           (String.sub s.seal 0 (min 8 (String.length s.seal)))
                           sc.count
                           (String.sub sc.seal_hex 0 8))
                      ~repair:"quarantine";
                    false)
                  else true
          in
          List.iter
            (fun (c : Manifest.seg) ->
              match
                List.find_opt (fun (r : Manifest.seg) -> r.lo = c.lo && r.hi = c.hi) man.rows
              with
              | None ->
                  flag ~file:c.file ~problem:"no_rows_mate" ~detail:"span has no rows column"
                    ~repair:"drop-from-manifest"
              | Some r ->
                  let cok = scan_listed c and rok = scan_listed r in
                  if cok && rok then good_pairs := (c, r) :: !good_pairs)
            man.segments;
          (* Indexes. *)
          let good_indexes =
            List.filter
              (fun (name, file, sha) ->
                if not (Sys.file_exists (Filename.concat dir file)) then (
                  flag ~file ~problem:"missing" ~detail:(Printf.sprintf "%s index" name)
                    ~repair:"drop-from-manifest";
                  false)
                else
                  match Index.sha_hex ~dir ~file with
                  | Error e ->
                      flag ~file ~problem:"index_corrupt" ~detail:e ~repair:"drop-from-manifest";
                      false
                  | Ok h when h <> sha ->
                      flag ~file ~problem:"index_mismatch"
                        ~detail:"index seal differs from manifest" ~repair:"drop-from-manifest";
                      false
                  | Ok _ -> true)
              man.indexes
          in
          (* Unreferenced data files. *)
          let referenced =
            List.map (fun (s : Manifest.seg) -> s.file) (man.segments @ man.rows)
            @ List.map (fun (_, f, _) -> f) man.indexes
          in
          let adoptable = ref 0 in
          Array.iter
            (fun f ->
              let is_data =
                parse_cert_file f <> None || parse_rows_file f <> None
                || Filename.check_suffix f ".idx"
                || Filename.check_suffix f ".seg.new"
              in
              if is_data && not (List.mem f referenced) then
                if man.state = `Building && not (Filename.check_suffix f ".idx") then begin
                  (* Build in flight: unlisted segments are adoption
                     candidates for the next recovery, not errors — and
                     an intact one means salvageable data survives the
                     crash, so it counts toward usability. *)
                  if parse_cert_file f <> None then
                    match Segment.scan ~keep_payloads:false (Filename.concat dir f) with
                    | Ok sc when sc.problem = None -> incr adoptable
                    | Ok _ | Error _ -> ()
                end
                else
                  flag ~file:f ~problem:"stray" ~detail:"not referenced by manifest"
                    ~repair:"delete")
            files;
          let good_pairs = List.rev !good_pairs in
          let spans_ok = List.length good_pairs in
          let spans_expected = List.length man.segments in
          let coverage_lost = spans_ok < spans_expected in
          (* Usable = salvageable data survives (an intact referenced
             span or an adoptable build-in-flight segment), or nothing
             durable was ever lost: when the manifest claims no
             segments, whatever lies around — torn build-in-flight
             segments, stray tmps from an interrupted first commit —
             was never committed, and a rerun rebuilds it from scratch.
             Unusable is reserved for a store whose *committed* data is
             gone: identity unreadable, or a manifest claiming spans of
             which none survive intact. *)
          let usable =
            spans_ok > 0 || !adoptable > 0 || (id_ok && man.segments = [])
          in
          let repaired =
            repair && !issues <> []
            && begin
                 (* Apply repairs most-destructive last: deletes, then
                    quarantines, then the manifest rewrite that stops
                    referencing anything damaged. *)
                 List.iter
                   (fun i ->
                     let path = Filename.concat dir i.file in
                     match i.repair with
                     | "delete" ->
                         Obs.Counter.inc repairs;
                         remove_if_exists path
                     | "quarantine" ->
                         quarantine_seg dir ~file:i.file ~reason:i.problem ~detail:i.detail
                     | _ -> ())
                   (List.rev !issues);
                 (* Quarantine intact mates of quarantined span halves:
                    the pair lives and dies together. *)
                 List.iter
                   (fun (c : Manifest.seg) ->
                     match
                       List.find_opt (fun (r : Manifest.seg) -> r.lo = c.lo && r.hi = c.hi) man.rows
                     with
                     | Some r ->
                         let gone s =
                           not (Sys.file_exists (Filename.concat dir s.Manifest.file))
                         in
                         let in_good =
                           List.exists (fun ((gc : Manifest.seg), _) -> gc.file = c.file) good_pairs
                         in
                         if (not in_good) && (gone c <> gone r) then
                           let file = if gone c then r.file else c.file in
                           quarantine_seg dir ~file ~reason:"lockstep_mate"
                             ~detail:"mate segment was quarantined"
                     | None -> ())
                   man.segments;
                 if id_ok then (
                   let man' =
                     {
                       man with
                       state = (if coverage_lost || not man_ok then `Building else man.state);
                       segments = List.map fst good_pairs;
                       rows = List.map snd good_pairs;
                       indexes = (if coverage_lost || not man_ok then [] else good_indexes);
                       meta = (if coverage_lost || not man_ok then [] else man.meta);
                     }
                   in
                   Manifest.save ~dir man');
                 true
               end
          in
          {
            issues = List.rev !issues;
            spans_ok;
            spans_expected;
            store_state = (if man_ok then (man.state :> [ `Complete | `Building | `Absent ]) else `Building);
            usable;
            repaired;
          }
        end)

let prewarm () =
  ignore (Crc32.string "");
  ignore (Ucrypto.Sha256.hex "");
  Obs.Counter.inc reads;
  Obs.Counter.reset reads
