let smtputf8_oid = Asn1.Oid.register (Asn1.Oid.of_string_exn "1.3.6.1.5.5.7.8.9")

let rfc5280_date = Asn1.Time.make 2008 5 1
let idna2008_date = Asn1.Time.make 2010 8 1
let cab_br_date = Asn1.Time.make 2012 7 1
let community_date = Asn1.Time.make 2015 1 1
let rfc8399_date = Asn1.Time.make 2018 5 1
let rfc9598_date = Asn1.Time.make 2024 6 1
let rfc9549_date = Asn1.Time.make 2024 7 1

let emit level details =
  match details with
  | [] -> Types.Pass
  | _ -> (
      match Types.severity_of_level level with
      | Types.Error -> Types.Fail details
      | Types.Warning -> Types.Warn details)

let describe_cp = Unicode.Cp.to_string

let values_of vals attrs =
  match attrs with
  | None -> vals
  | Some l -> List.filter (fun (v : Ctx.aval) -> List.mem v.Ctx.a_attr l) vals

let subject_values ?attrs ctx = values_of ctx.Ctx.subject_vals attrs
let issuer_values ?attrs ctx = values_of ctx.Ctx.issuer_vals attrs

let all_values ctx = ctx.Ctx.all_vals

let declared_type (atv : X509.Dn.atv) =
  match atv.X509.Dn.value with Asn1.Value.Str (st, _) -> Some st | _ -> None

let gn_strings gns =
  List.filter_map
    (fun gn ->
      match gn with
      | X509.General_name.Dns_name s -> Some ("dNSName", s)
      | X509.General_name.Rfc822_name s -> Some ("rfc822Name", s)
      | X509.General_name.Uri s -> Some ("URI", s)
      | X509.General_name.Other_name _ | X509.General_name.Directory_name _
      | X509.General_name.Ip_address _ | X509.General_name.Registered_id _ ->
          None)
    gns

let names_of = function Some (Ok gns) -> gns | Some (Error _) | None -> []

let san_names ctx = names_of ctx.Ctx.san
let ian_names ctx = names_of ctx.Ctx.ian
let crldp_list ctx = names_of ctx.Ctx.crldp_names

let aia_locations ctx =
  match ctx.Ctx.aia with
  | Some (Ok descs) -> List.map snd descs
  | Some (Error _) | None -> []

let sia_locations ctx =
  match ctx.Ctx.sia with
  | Some (Ok descs) -> List.map snd descs
  | Some (Error _) | None -> []

let non_ia5 payload =
  let bad = ref [] in
  String.iter (fun c -> if Char.code c > 0x7F then bad := Char.code c :: !bad) payload;
  List.rev !bad

let a_labels domain =
  List.filter Idna.Dns.is_a_label_candidate (Idna.Dns.split_labels domain)
