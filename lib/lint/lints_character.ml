(* T1 — Invalid Character lints: weak character-range validation in
   certificate fields (paper §4.3.1).  22 lints, 10 of them the paper's
   new Unicode-specific checks.

   Each lint guards on the per-value property mask (Ctx.aval.a_mask)
   before walking code points: the mask ORs every class bit present in
   the value, so a zero [land] proves no code point can match and the
   walk — and its allocations — are skipped entirely. *)

open Types
open Helpers

let subject_control_chars name description ~bits ~pred ~level ~source ~is_new
    ~effective =
  mk ~name ~description ~source ~level ~nc_type:Invalid_character ~is_new ~effective
    (fun ctx ->
      let bad =
        List.concat_map
          (fun (v : Ctx.aval) ->
            if v.Ctx.a_mask land bits = 0 then []
            else
              Array.to_list v.Ctx.a_cps
              |> List.filter pred
              |> List.map (fun cp ->
                     Printf.sprintf "%s contains %s" (X509.Attr.name v.Ctx.a_attr)
                       (describe_cp cp)))
          (subject_values ctx)
      in
      emit level bad)

let dnsname_lint name description ~source ~level ~is_new ~effective check =
  mk ~name ~description ~source ~level ~nc_type:Invalid_character ~is_new ~effective
    (fun ctx -> emit level (List.concat_map check ctx.Ctx.dns_facts))

(* Walk a value's code points only when the mask says [bits] occur. *)
let masked_st_lint ~st ~bits ~pred ~fmt (v : Ctx.aval) =
  if v.Ctx.a_st <> st || v.Ctx.a_mask land bits = 0 then []
  else
    Array.to_list v.Ctx.a_cps
    |> List.filter pred
    |> List.map (fun cp -> fmt (X509.Attr.name v.Ctx.a_attr) (describe_cp cp))

let lints : Types.t list =
  [
    (* ------------------------------------------------------------------
       Established lints (12) *)
    subject_control_chars "e_rfc_subject_dn_not_printable_characters"
      "Subject DN values must not contain non-printable control characters \
       (NUL, ESC, DEL, other C0 codes)."
      ~bits:(Unicode.Props.m_c0 lor Unicode.Props.m_del)
      ~pred:(fun cp -> Unicode.Props.is_c0_control cp || Unicode.Props.is_del cp)
      ~level:Must ~source:Community ~is_new:false ~effective:community_date;
    mk ~name:"e_rfc_subject_printable_string_badalpha"
      ~description:
        "Values declared PrintableString must stay within the PrintableString \
         repertoire (RFC 5280 via X.680)."
      ~source:Rfc5280 ~level:Must ~nc_type:Invalid_character ~effective:rfc5280_date
      (fun ctx ->
        let bad =
          List.concat_map
            (masked_st_lint ~st:Asn1.Str_type.Printable_string
               ~bits:Unicode.Props.m_not_printable
               ~pred:(fun cp -> not (Unicode.Props.is_printable_string_char cp))
               ~fmt:(Printf.sprintf "%s PrintableString contains %s"))
            (all_values ctx)
        in
        emit Must bad);
    mk ~name:"w_community_subject_dn_trailing_whitespace"
      ~description:"Subject DN values should not end with whitespace."
      ~source:Community ~level:Should_not ~nc_type:Invalid_character
      ~effective:community_date
      (fun ctx ->
        let bad =
          List.filter_map
            (fun (v : Ctx.aval) ->
              let cps = v.Ctx.a_cps in
              let n = Array.length cps in
              if n > 0 && Unicode.Props.is_whitespace cps.(n - 1) then
                Some (X509.Attr.name v.Ctx.a_attr ^ " has trailing whitespace")
              else None)
            (subject_values ctx)
        in
        emit Should_not bad);
    mk ~name:"w_community_subject_dn_leading_whitespace"
      ~description:"Subject DN values should not start with whitespace."
      ~source:Community ~level:Should_not ~nc_type:Invalid_character
      ~effective:community_date
      (fun ctx ->
        let bad =
          List.filter_map
            (fun (v : Ctx.aval) ->
              let cps = v.Ctx.a_cps in
              if Array.length cps > 0 && Unicode.Props.is_whitespace cps.(0) then
                Some (X509.Attr.name v.Ctx.a_attr ^ " has leading whitespace")
              else None)
            (subject_values ctx)
        in
        emit Should_not bad);
    dnsname_lint "e_rfc_dns_idn_malformed_unicode"
      "IDN A-labels in DNSNames must decode to Unicode via Punycode."
      ~source:Rfc8399 ~level:Must ~is_new:false ~effective:rfc8399_date
      (fun fact ->
        List.filter_map
          (fun (l, issues) ->
            match
              List.find_opt
                (function Idna.Malformed_punycode _ -> true | _ -> false)
                issues
            with
            | Some (Idna.Malformed_punycode m) ->
                Some (Printf.sprintf "label %S: %s" l m)
            | _ -> None)
          fact.Ctx.d_alabels);
    dnsname_lint "e_cab_dns_bad_character_in_label"
      "DNSName labels must use only letters, digits and hyphens."
      ~source:Cab_br ~level:Must ~is_new:false ~effective:cab_br_date
      (fun fact ->
        fact.Ctx.d_dns
        |> List.filter_map (function
             | Idna.Dns.Bad_character (l, cp) when cp < 0x80 ->
                 Some (Printf.sprintf "label %S contains %s" l (describe_cp cp))
             | _ -> None));
    mk ~name:"e_ia5string_contains_non_ia5"
      ~description:"IA5String values must contain only 7-bit characters."
      ~source:Rfc5280 ~level:Must ~nc_type:Invalid_character ~effective:rfc5280_date
      (fun ctx ->
        let bad =
          List.concat_map
            (fun (v : Ctx.aval) ->
              if v.Ctx.a_st <> Asn1.Str_type.Ia5_string || not v.Ctx.a_has_hi then []
              else
                non_ia5 v.Ctx.a_raw
                |> List.map (fun b ->
                       Printf.sprintf "%s IA5String contains byte 0x%02X"
                         (X509.Attr.name v.Ctx.a_attr) b))
            (all_values ctx)
        in
        emit Must bad);
    dnsname_lint "e_dnsname_contains_whitespace"
      "DNSNames must not contain whitespace."
      ~source:Cab_br ~level:Must ~is_new:false ~effective:cab_br_date
      (fun fact ->
        let name = fact.Ctx.d_name in
        if String.exists (fun c -> c = ' ' || c = '\t') name then
          [ Printf.sprintf "%S contains whitespace" name ]
        else []);
    mk ~name:"e_numeric_string_invalid_characters"
      ~description:"NumericString values allow only digits and space (X.680)."
      ~source:X680 ~level:Must ~nc_type:Invalid_character ~effective:rfc5280_date
      (fun ctx ->
        let bad =
          List.concat_map
            (masked_st_lint ~st:Asn1.Str_type.Numeric_string
               ~bits:Unicode.Props.m_not_numeric
               ~pred:(fun cp -> not (Unicode.Props.is_numeric_string_char cp))
               ~fmt:(Printf.sprintf "%s NumericString contains %s"))
            (all_values ctx)
        in
        emit Must bad);
    mk ~name:"e_visible_string_invalid_characters"
      ~description:"VisibleString values allow only printable ASCII (X.680)."
      ~source:X680 ~level:Must ~nc_type:Invalid_character ~effective:rfc5280_date
      (fun ctx ->
        let bad =
          List.concat_map
            (masked_st_lint ~st:Asn1.Str_type.Visible_string
               ~bits:Unicode.Props.m_not_visible
               ~pred:(fun cp -> not (Unicode.Props.is_visible_string_char cp))
               ~fmt:(Printf.sprintf "%s VisibleString contains %s"))
            (all_values ctx)
        in
        emit Must bad);
    subject_control_chars "w_subject_dn_del_character"
      "Subject DN values should not contain the DEL (U+007F) character."
      ~bits:Unicode.Props.m_del ~pred:Unicode.Props.is_del ~level:Should_not
      ~source:Community ~is_new:false ~effective:community_date;
    mk ~name:"e_san_rfc822_name_invalid_ascii"
      ~description:"rfc822Name values must be 7-bit ASCII mailboxes (RFC 5280)."
      ~source:Rfc5280 ~level:Must ~nc_type:Invalid_character ~effective:rfc5280_date
      (fun ctx ->
        let bad =
          List.concat_map
            (fun gn ->
              match gn with
              | X509.General_name.Rfc822_name s ->
                  non_ia5 s
                  |> List.map (fun b -> Printf.sprintf "rfc822Name byte 0x%02X" b)
              | _ -> [])
            (san_names ctx @ ian_names ctx)
        in
        emit Must bad);
    (* ------------------------------------------------------------------
       New Unicode-specific lints (10) *)
    dnsname_lint "e_rfc_dns_idn_a2u_unpermitted_unichar"
      "A-labels must decode to U-labels containing only IDNA2008-permitted \
       code points."
      ~source:Idna2008 ~level:Must ~is_new:true ~effective:idna2008_date
      (fun fact ->
        List.concat_map
          (fun (l, issues) ->
            issues
            |> List.filter_map (function
                 | Idna.Unpermitted_char cp ->
                     Some
                       (Printf.sprintf "label %S decodes to unpermitted %s" l
                          (describe_cp cp))
                 | Idna.Bidi_violation ->
                     Some (Printf.sprintf "label %S violates the Bidi rule" l)
                 | _ -> None))
          fact.Ctx.d_alabels);
    mk ~name:"e_ext_san_dns_contain_unpermitted_unichar"
      ~description:
        "SAN DNSNames must not carry raw non-ASCII or disallowed characters; \
         internationalized labels must be A-labels."
      ~source:Rfc8399 ~level:Must ~nc_type:Invalid_character ~is_new:true
      ~effective:rfc8399_date
      (fun ctx ->
        let bad =
          List.concat_map
            (fun gn ->
              match gn with
              | X509.General_name.Dns_name s ->
                  let cps = Unicode.Codec.cps_of_latin1 s in
                  Array.to_list cps
                  |> List.filter (fun cp ->
                         cp > 0x7F || Unicode.Props.is_c0_control cp
                         || Unicode.Props.is_del cp)
                  |> List.map (fun cp ->
                         Printf.sprintf "dNSName %S contains %s" s (describe_cp cp))
              | _ -> [])
            (san_names ctx)
        in
        emit Must bad);
    mk ~name:"e_utf8string_control_characters"
      ~description:"UTF8String DN values must not contain C0/C1 control codes."
      ~source:Rfc9549 ~level:Must ~nc_type:Invalid_character ~is_new:true
      ~effective:rfc8399_date
      (fun ctx ->
        let bad =
          List.concat_map
            (masked_st_lint ~st:Asn1.Str_type.Utf8_string
               ~bits:Unicode.Props.m_control ~pred:Unicode.Props.is_control
               ~fmt:(Printf.sprintf "%s UTF8String contains %s"))
            (all_values ctx)
        in
        emit Must bad);
    subject_control_chars "w_subject_dn_bidi_controls"
      "Subject DN values should not contain bidirectional control characters."
      ~bits:Unicode.Props.m_bidi ~pred:Unicode.Props.is_bidi_control
      ~level:Should_not ~source:Rfc9549 ~is_new:true ~effective:community_date;
    subject_control_chars "w_subject_dn_invisible_characters"
      "Subject DN values should not contain invisible layout characters \
       (zero-width spaces/joiners, non-ASCII whitespace)."
      ~bits:Unicode.Props.m_invisible ~pred:Unicode.Props.is_invisible
      ~level:Should_not ~source:Community ~is_new:true ~effective:community_date;
    mk ~name:"e_bmpstring_surrogate"
      ~description:"BMPString must not contain surrogate code units (X.680)."
      ~source:X680 ~level:Must ~nc_type:Invalid_character ~is_new:true
      ~effective:rfc5280_date
      (fun ctx ->
        let bad =
          List.concat_map
            (fun (v : Ctx.aval) ->
              if
                v.Ctx.a_st <> Asn1.Str_type.Bmp_string
                || v.Ctx.a_mask land Unicode.Props.m_surrogate = 0
              then []
              else
                Array.to_list v.Ctx.a_cps
                |> List.filter Unicode.Cp.is_surrogate
                |> List.map (fun cp ->
                       Printf.sprintf "%s BMPString contains surrogate %s"
                         (X509.Attr.name v.Ctx.a_attr) (describe_cp cp)))
            (all_values ctx)
        in
        emit Must bad);
    mk ~name:"e_san_uri_invalid_characters"
      ~description:
        "URI GeneralNames must not contain spaces, control characters or raw \
         non-ASCII bytes (IRIs must be percent-encoded/punycoded)."
      ~source:Rfc5280 ~level:Must ~nc_type:Invalid_character ~is_new:true
      ~effective:rfc5280_date
      (fun ctx ->
        let bad =
          List.concat_map
            (fun gn ->
              match gn with
              | X509.General_name.Uri s ->
                  let issues = ref [] in
                  String.iter
                    (fun c ->
                      let b = Char.code c in
                      if b <= 0x20 || b = 0x7F || b > 0x7F then
                        issues :=
                          Printf.sprintf "URI %S contains byte 0x%02X" s b :: !issues)
                    s;
                  List.rev !issues
              | _ -> [])
            (san_names ctx @ sia_locations ctx)
        in
        emit Must bad);
    mk ~name:"e_ext_ian_dns_invalid_characters"
      ~description:"IssuerAltName DNSNames must use only LDH characters."
      ~source:Cab_br ~level:Must ~nc_type:Invalid_character ~is_new:true
      ~effective:cab_br_date
      (fun ctx ->
        let bad =
          List.concat_map
            (fun gn ->
              match gn with
              | X509.General_name.Dns_name s ->
                  Idna.Dns.check s
                  |> List.filter_map (function
                       | Idna.Dns.Bad_character (l, cp) ->
                           Some
                             (Printf.sprintf "IAN label %S contains %s" l (describe_cp cp))
                       | _ -> None)
              | _ -> [])
            (ian_names ctx)
        in
        emit Must bad);
    subject_control_chars "w_subject_dn_replacement_character"
      "Subject DN values should not contain U+FFFD, which indicates a broken \
       transcoding step at issuance."
      ~bits:Unicode.Props.m_replacement ~pred:(fun cp -> cp = 0xFFFD)
      ~level:Should_not ~source:Community ~is_new:true ~effective:community_date;
    mk ~name:"e_crldp_uri_control_characters"
      ~description:
        "CRLDistributionPoints URIs must not contain control characters (which \
         lenient parsers rewrite into different addresses)."
      ~source:Rfc5280 ~level:Must ~nc_type:Invalid_character ~is_new:true
      ~effective:rfc5280_date
      (fun ctx ->
        let bad =
          List.concat_map
            (fun gn ->
              match gn with
              | X509.General_name.Uri s ->
                  let issues = ref [] in
                  String.iteri
                    (fun i c ->
                      let b = Char.code c in
                      if b < 0x20 || b = 0x7F then
                        issues :=
                          Printf.sprintf "CRLDP URI control byte 0x%02X at %d" b i
                          :: !issues)
                    s;
                  List.rev !issues
              | _ -> [])
            (crldp_list ctx)
        in
        emit Must bad);
  ]
