(** Shared building blocks for the concrete lints. *)

val smtputf8_oid : Asn1.Oid.t
(** id-on-smtpUTF8Mailbox (1.3.6.1.5.5.7.8.9), interned once. *)

(** {1 Effective dates} *)

(* rfc5280 2008-05, idna2008 2010-08, cab_br 2012-07, community 2015-01,
   rfc8399 2018-05, rfc9598 2024-06, rfc9549 2024-07 *)

val rfc5280_date : Asn1.Time.t
val idna2008_date : Asn1.Time.t
val cab_br_date : Asn1.Time.t
val community_date : Asn1.Time.t
val rfc8399_date : Asn1.Time.t
val rfc9598_date : Asn1.Time.t
val rfc9549_date : Asn1.Time.t

(** {1 Status helpers} *)

val emit : Types.level -> string list -> Types.status
(** [emit level details] is [Pass] on no details, otherwise [Fail] for
    MUST-level lints and [Warn] for SHOULD-level ones. *)

val describe_cp : Unicode.Cp.t -> string

(** {1 ATV iteration} *)

val subject_values : ?attrs:X509.Attr.t list -> Ctx.t -> Ctx.aval list
(** Precomputed fact records for subject string ATVs, optionally
    restricted to [attrs]. *)

val issuer_values : ?attrs:X509.Attr.t list -> Ctx.t -> Ctx.aval list

val all_values : Ctx.t -> Ctx.aval list
(** Subject then issuer fact records (the precomputed concatenation —
    no per-lint list building). *)

val declared_type : X509.Dn.atv -> Asn1.Str_type.t option

(** {1 GeneralName payload extraction} *)

val gn_strings : Ctx.general_names -> (string * string) list
(** [(kind, payload)] for the IA5-carried choices (dNSName, rfc822Name,
    URI). *)

val san_names : Ctx.t -> Ctx.general_names
val ian_names : Ctx.t -> Ctx.general_names
val crldp_list : Ctx.t -> Ctx.general_names
val aia_locations : Ctx.t -> X509.General_name.t list
val sia_locations : Ctx.t -> X509.General_name.t list

val non_ia5 : string -> int list
(** Byte values above 0x7F present in the payload. *)

val a_labels : string -> string list
(** The xn-- labels of a domain string. *)
