(* T2 — Bad Normalization lints (paper §4.3.1): NFC and canonical-form
   requirements.  4 lints, 3 new.  NFC results and per-A-label IDNA
   round-trips come precomputed from the fact table (Ctx). *)

open Types
open Helpers

(* Flag every A-label whose cached issue list contains [issue]. *)
let alabel_issue_lint ~name ~description ~source ~effective ~issue ~fmt =
  mk ~name ~description ~source ~level:Must ~nc_type:Bad_normalization ~is_new:true
    ~effective
    (fun ctx ->
      let bad =
        List.concat_map
          (fun fact ->
            List.filter_map
              (fun (l, issues) ->
                if List.mem issue issues then Some (Printf.sprintf fmt l) else None)
              fact.Ctx.d_alabels)
          ctx.Ctx.dns_facts
      in
      emit Must bad)

let lints : Types.t list =
  [
    mk ~name:"w_rfc_utf8_string_not_nfc"
      ~description:
        "UTF8String attribute values SHOULD be normalized to Unicode \
         Normalization Form C (RFC 5280 via RFC 4518/TR15)."
      ~source:Rfc5280 ~level:Should ~nc_type:Bad_normalization ~effective:rfc5280_date
      (fun ctx ->
        let bad =
          List.filter_map
            (fun (v : Ctx.aval) ->
              if v.Ctx.a_st = Asn1.Str_type.Utf8_string && not v.Ctx.a_nfc then
                Some (X509.Attr.name v.Ctx.a_attr ^ " UTF8String is not NFC")
              else None)
            (all_values ctx)
        in
        emit Should bad);
    alabel_issue_lint ~name:"e_rfc_dns_idn_not_nfc"
      ~description:
        "The Unicode form of an IDN label must be NFC-normalized; A-labels \
         whose decoding is not NFC cannot round-trip between forms."
      ~source:Rfc8399 ~effective:rfc8399_date ~issue:Idna.Not_nfc
      ~fmt:"label %S decodes to a non-NFC string";
    alabel_issue_lint ~name:"e_rfc_dns_idn_noncanonical_alabel"
      ~description:
        "A-labels must be the canonical Punycode encoding of their U-label \
         (decode-then-re-encode must reproduce the label)."
      ~source:Rfc5890 ~effective:idna2008_date ~issue:Idna.Non_canonical_alabel
      ~fmt:"label %S is not canonical Punycode";
    mk ~name:"e_ext_san_smtputf8_mailbox_not_nfc"
      ~description:
        "SmtpUTF8Mailbox otherName local parts must be NFC-normalized \
         (RFC 9598)."
      ~source:Rfc9598 ~level:Must ~nc_type:Bad_normalization ~is_new:true
      ~effective:rfc9598_date
      (fun ctx ->
        let smtputf8 = smtputf8_oid in
        let bad =
          List.filter_map
            (fun gn ->
              match gn with
              | X509.General_name.Other_name (oid, raw) when Asn1.Oid.equal oid smtputf8 ->
                  if not (Unicode.Normalize.utf8_is_nfc raw) then
                    Some "SmtpUTF8Mailbox is not NFC"
                  else None
              | _ -> None)
            (san_names ctx)
        in
        emit Must bad);
  ]
