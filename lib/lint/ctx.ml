type atv_info = {
  atv : X509.Dn.atv;
  cps : Unicode.Cp.t array option;
  lenient_cps : Unicode.Cp.t array;
  in_issuer : bool;
}

(* Derived-fact record for one string-typed ATV.  Everything the lints
   test repeatedly — property classes, raw byte classes, NFC — is
   resolved once here, so the 95 lints reduce to bitmask checks over
   these records. *)
type aval = {
  a_attr : X509.Attr.t;
  a_st : Asn1.Str_type.t;
  a_raw : string;
  a_cps : Unicode.Cp.t array;  (* lenient decoding *)
  a_mask : int;  (* OR of [Unicode.Props.mask] over [a_cps] *)
  a_has_hi : bool;  (* any raw byte >= 0x80 *)
  a_nfc : bool;  (* NFC check result; [true] for non-UTF8String values *)
}

(* Derived facts for one DNS name (SAN dNSName or DNS-shaped subject
   CN): the label split, the RFC 1034/CA-B checks and the per-A-label
   IDNA round-trip issues, each computed once instead of once per
   consuming lint. *)
type dns_fact = {
  d_name : string;
  d_labels : string list;
  d_dns : Idna.Dns.issue list;  (* [Idna.Dns.check d_name] *)
  d_alabels : (string * Idna.issue list) list;
      (* xn-- labels with their [Idna.alabel_issues] *)
}

type general_names = X509.General_name.t list

type t = {
  cert : X509.Certificate.t;
  subject : atv_info list;
  issuer : atv_info list;
  subject_vals : aval list;
  issuer_vals : aval list;
  all_vals : aval list;  (* [subject_vals @ issuer_vals], precomputed *)
  dns_facts : dns_fact list;
  san : (general_names, string) result option;
  ian : (general_names, string) result option;
  crldp_names : (general_names, string) result option;
  aia : ((Asn1.Oid.t * X509.General_name.t) list, string) result option;
  sia : ((Asn1.Oid.t * X509.General_name.t) list, string) result option;
  policies : (X509.Extension.policy list, string) result option;
  etexts : (Asn1.Str_type.t * string) list;
      (* CertificatePolicies userNotice explicitText values *)
}

let atv_info ~in_issuer (atv : X509.Dn.atv) =
  match atv.X509.Dn.value with
  | Asn1.Value.Str (st, raw) -> (
      (* One decode in the common case: a successful strict decode is
         exactly what replacement decoding would produce, so the two
         views share the array.  Only malformed payloads pay a second,
         lenient pass. *)
      match Asn1.Str_type.decode_value st raw with
      | Ok cps -> { atv; cps = Some cps; lenient_cps = cps; in_issuer }
      | Error _ ->
          let lenient_cps =
            match
              Unicode.Codec.decode ~policy:(Unicode.Codec.Replace 0xFFFD)
                (Asn1.Str_type.standard_encoding st) raw
            with
            | Ok cps -> cps
            | Error _ -> Unicode.Codec.cps_of_latin1 raw
          in
          { atv; cps = None; lenient_cps; in_issuer })
  | _ -> { atv; cps = None; lenient_cps = [||]; in_issuer }

let cps_mask cps =
  let m = ref 0 in
  for i = 0 to Array.length cps - 1 do
    m := !m lor Unicode.Props.mask (Array.unsafe_get cps i)
  done;
  !m

let has_hi_byte raw =
  let n = String.length raw in
  let rec go i = i < n && (Char.code (String.unsafe_get raw i) >= 0x80 || go (i + 1)) in
  go 0

let aval_of_info (info : atv_info) =
  match info.atv.X509.Dn.value with
  | Asn1.Value.Str (st, raw) ->
      let cps = info.lenient_cps in
      Some
        {
          a_attr = info.atv.X509.Dn.typ;
          a_st = st;
          a_raw = raw;
          a_cps = cps;
          a_mask = cps_mask cps;
          a_has_hi = has_hi_byte raw;
          a_nfc =
            (if st = Asn1.Str_type.Utf8_string then Unicode.Normalize.is_nfc cps
             else true);
        }
  | _ -> None

let dns_fact name =
  let labels = Idna.Dns.split_labels name in
  {
    d_name = name;
    d_labels = labels;
    d_dns = Idna.Dns.check name;
    d_alabels =
      List.filter_map
        (fun l ->
          if Idna.Dns.is_a_label_candidate l then Some (l, Idna.alabel_issues l)
          else None)
        labels;
  }

let ext_payload cert oid parse =
  match X509.Extension.find cert.X509.Certificate.tbs.X509.Certificate.extensions oid with
  | None -> None
  | Some e -> Some (parse e.X509.Extension.value)

let san_dns_of san =
  match san with
  | Some (Ok gns) ->
      List.filter_map (function X509.General_name.Dns_name s -> Some s | _ -> None) gns
  | Some (Error _) | None -> []

let looks_like_dns s =
  s <> ""
  && String.contains s '.'
  && String.for_all (fun c -> Char.code c < 0x80) s
  && not (String.contains s '@')
  && not (String.contains s '/')

let etexts_of policies =
  match policies with
  | Some (Ok policies) ->
      List.filter_map
        (fun (p : X509.Extension.policy) ->
          match p.X509.Extension.notice with
          | Some { X509.Extension.explicit_text = Some (Asn1.Value.Str (st, raw)) } ->
              Some (st, raw)
          | _ -> None)
        policies
  | Some (Error _) | None -> []

let of_cert cert =
  let tbs = cert.X509.Certificate.tbs in
  let subject = List.map (atv_info ~in_issuer:false) (X509.Dn.all_atvs tbs.X509.Certificate.subject) in
  let issuer = List.map (atv_info ~in_issuer:true) (X509.Dn.all_atvs tbs.X509.Certificate.issuer) in
  let subject_vals = List.filter_map aval_of_info subject in
  let issuer_vals = List.filter_map aval_of_info issuer in
  let open X509.Extension in
  let san = ext_payload cert Oids.subject_alt_name parse_general_names in
  let policies = ext_payload cert Oids.certificate_policies parse_certificate_policies in
  let dns_names =
    san_dns_of san
    @ List.filter_map
        (fun info ->
          if info.atv.X509.Dn.typ = X509.Attr.Common_name && not info.in_issuer then begin
            let text = X509.Dn.atv_text info.atv in
            if looks_like_dns text then Some text else None
          end
          else None)
        subject
  in
  {
    cert;
    subject;
    issuer;
    subject_vals;
    issuer_vals;
    all_vals = subject_vals @ issuer_vals;
    dns_facts = List.map dns_fact dns_names;
    san;
    ian = ext_payload cert Oids.issuer_alt_name parse_general_names;
    crldp_names = ext_payload cert Oids.crl_distribution_points parse_crl_distribution_points;
    aia = ext_payload cert Oids.authority_info_access parse_info_access;
    sia = ext_payload cert Oids.subject_info_access parse_info_access;
    policies;
    etexts = etexts_of policies;
  }

let san_dns t = san_dns_of t.san
let dns_names t = List.map (fun f -> f.d_name) t.dns_facts

let subject_texts t =
  List.map (fun info -> (info.atv.X509.Dn.typ, X509.Dn.atv_text info.atv)) t.subject
