(* T3c/T3d — Invalid Structure and Discouraged Field lints.  2 + 2
   lints, matching Table 1's taxonomy. *)

open Types
open Helpers

let lints : Types.t list =
  [
    (* Invalid Structure (2) *)
    mk ~name:"w_cab_subject_common_name_not_in_san"
      ~description:
        "If present, the subject CN must duplicate a value from the SAN \
         extension (CA/B BR 7.1.4.2.2)."
      ~source:Cab_br ~level:Must ~nc_type:Invalid_structure ~effective:cab_br_date
      (fun ctx ->
        let cns =
          List.map (fun (v : Ctx.aval) -> Unicode.Codec.utf8_of_cps v.Ctx.a_cps)
            (subject_values ~attrs:[ X509.Attr.Common_name ] ctx)
        in
        if cns = [] then Na
        else begin
          let san_values =
            List.map snd (gn_strings (san_names ctx))
            @ List.map
                (fun gn ->
                  match gn with X509.General_name.Ip_address _ -> X509.General_name.text gn | _ -> "")
                (san_names ctx)
          in
          let lower = String.lowercase_ascii in
          let missing =
            List.filter
              (fun cn -> not (List.exists (fun v -> lower v = lower cn) san_values))
              cns
          in
          emit Must
            (List.map (fun cn -> Printf.sprintf "CN %S not present in SAN" cn) missing)
        end);
    mk ~name:"e_subject_duplicate_attribute"
      ~description:
        "Subject attribute types must not be repeated (duplicate CNs confuse \
         entity extraction)."
      ~source:Community ~level:Must ~nc_type:Invalid_structure ~effective:cab_br_date
      (fun ctx ->
        let counts = Hashtbl.create 8 in
        List.iter
          (fun (v : Ctx.aval) ->
            Hashtbl.replace counts v.Ctx.a_attr
              (1 + try Hashtbl.find counts v.Ctx.a_attr with Not_found -> 0))
          (subject_values ctx);
        let bad =
          Hashtbl.fold
            (fun attr n acc ->
              if n > 1 && attr <> X509.Attr.Domain_component
                 && attr <> X509.Attr.Organizational_unit_name
              then Printf.sprintf "%s appears %d times" (X509.Attr.name attr) n :: acc
              else acc)
            counts []
        in
        emit Must bad);
    (* Discouraged Field (2) *)
    mk ~name:"w_cab_subject_contain_extra_common_name"
      ~description:
        "Subjects should carry at most one commonName (deprecated field; extra \
         CNs are discouraged)."
      ~source:Cab_br ~level:Should_not ~nc_type:Discouraged_field ~effective:cab_br_date
      (fun ctx ->
        let cns = subject_values ~attrs:[ X509.Attr.Common_name ] ctx in
        if List.length cns > 1 then
          Warn [ Printf.sprintf "subject contains %d commonNames" (List.length cns) ]
        else Pass);
    mk ~name:"w_ext_san_uri_discouraged"
      ~description:
        "URI entries in the SAN of TLS server certificates are discouraged \
         (CA/B BR restrict SAN to dNSName and iPAddress)."
      ~source:Cab_br ~level:Should_not ~nc_type:Discouraged_field ~effective:cab_br_date
      (fun ctx ->
        emit Should_not
          (List.filter_map
             (fun gn ->
               match gn with
               | X509.General_name.Uri u -> Some (Printf.sprintf "SAN contains URI %S" u)
               | _ -> None)
             (san_names ctx)));
  ]
