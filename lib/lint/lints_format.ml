(* T3a — Illegal Format lints: length overflows, case errors and other
   basic formatting violations.  17 lints, none new (covered by
   established linters). *)

open Types
open Helpers

let length_lint name attr bound =
  mk ~name
    ~description:
      (Printf.sprintf "%s must not exceed %d characters (RFC 5280 upper bounds)."
         (X509.Attr.name attr) bound)
    ~source:Rfc5280 ~level:Must ~nc_type:Illegal_format ~effective:rfc5280_date
    (fun ctx ->
      let bad =
        List.filter_map
          (fun (v : Ctx.aval) ->
            if v.Ctx.a_attr = attr && Array.length v.Ctx.a_cps > bound then
              Some
                (Printf.sprintf "%s has %d characters (max %d)" (X509.Attr.name attr)
                   (Array.length v.Ctx.a_cps) bound)
            else None)
          (subject_values ctx)
      in
      emit Must bad)

let lints : Types.t list =
  [
    mk ~name:"e_rfc_ext_cp_explicit_text_too_long"
      ~description:
        "CertificatePolicies userNotice explicitText must not exceed 200 \
         characters (RFC 5280 §4.2.1.4)."
      ~source:Rfc5280 ~level:Must ~nc_type:Illegal_format ~effective:rfc5280_date
      (fun ctx ->
        match ctx.Ctx.policies with
        | Some (Ok policies) ->
            let bad =
              List.filter_map
                (fun (p : X509.Extension.policy) ->
                  match p.X509.Extension.notice with
                  | Some { X509.Extension.explicit_text = Some (Asn1.Value.Str (st, raw)) } -> (
                      match Asn1.Str_type.decode_value st raw with
                      | Ok cps when Array.length cps > 200 ->
                          Some
                            (Printf.sprintf "explicitText has %d characters"
                               (Array.length cps))
                      | Ok _ -> None
                      | Error _ ->
                          if String.length raw > 200 then
                            Some
                              (Printf.sprintf "explicitText has %d bytes"
                                 (String.length raw))
                          else None)
                  | _ -> None)
                policies
            in
            emit Must bad
        | Some (Error _) | None -> Na);
    length_lint "e_subject_common_name_max_length" X509.Attr.Common_name 64;
    length_lint "e_subject_organization_name_max_length" X509.Attr.Organization_name 64;
    length_lint "e_subject_locality_name_max_length" X509.Attr.Locality_name 128;
    length_lint "e_subject_state_name_max_length" X509.Attr.State_or_province_name 128;
    mk ~name:"e_subject_country_not_two_letters"
      ~description:"countryName must be exactly two letters (ISO 3166)."
      ~source:Rfc5280 ~level:Must ~nc_type:Illegal_format ~effective:rfc5280_date
      (fun ctx ->
        let bad =
          List.filter_map
            (fun (v : Ctx.aval) ->
              if v.Ctx.a_attr <> X509.Attr.Country_name then None
              else if
                Array.length v.Ctx.a_cps = 2
                && Array.for_all Unicode.Props.is_ascii_letter v.Ctx.a_cps
              then None
              else
                Some
                  (Printf.sprintf "countryName %S is not a two-letter code"
                     (Unicode.Codec.utf8_of_cps v.Ctx.a_cps)))
            (subject_values ctx)
        in
        emit Must bad);
    mk ~name:"e_subject_country_not_uppercase"
      ~description:"countryName letters must be upper case (CA/B BR)."
      ~source:Cab_br ~level:Must ~nc_type:Illegal_format ~effective:cab_br_date
      (fun ctx ->
        let bad =
          List.filter_map
            (fun (v : Ctx.aval) ->
              if
                v.Ctx.a_attr = X509.Attr.Country_name
                && Array.exists Unicode.Props.is_ascii_lower v.Ctx.a_cps
              then
                Some
                  (Printf.sprintf "countryName %S uses lower case"
                     (Unicode.Codec.utf8_of_cps v.Ctx.a_cps))
              else None)
            (subject_values ctx)
        in
        emit Must bad);
    mk ~name:"e_dns_label_too_long"
      ~description:"DNS labels must not exceed 63 octets (RFC 1034)."
      ~source:Rfc1034 ~level:Must ~nc_type:Illegal_format ~effective:rfc5280_date
      (fun ctx ->
        let bad =
          List.concat_map
            (fun fact ->
              fact.Ctx.d_dns
              |> List.filter_map (function
                   | Idna.Dns.Label_too_long l -> Some (Printf.sprintf "label %S too long" l)
                   | _ -> None))
            ctx.Ctx.dns_facts
        in
        emit Must bad);
    mk ~name:"e_dns_name_too_long"
      ~description:"DNS names must not exceed 253 octets (RFC 1034)."
      ~source:Rfc1034 ~level:Must ~nc_type:Illegal_format ~effective:rfc5280_date
      (fun ctx ->
        let bad =
          List.concat_map
            (fun fact ->
              fact.Ctx.d_dns
              |> List.filter_map (function
                   | Idna.Dns.Name_too_long n -> Some (Printf.sprintf "name length %d" n)
                   | _ -> None))
            ctx.Ctx.dns_facts
        in
        emit Must bad);
    mk ~name:"e_serial_number_longer_than_20_octets"
      ~description:"Certificate serial numbers must fit in 20 octets (RFC 5280)."
      ~source:Rfc5280 ~level:Must ~nc_type:Illegal_format ~effective:rfc5280_date
      (fun ctx ->
        let serial = ctx.Ctx.cert.X509.Certificate.tbs.X509.Certificate.serial in
        if String.length serial > 20 then
          Fail [ Printf.sprintf "serial is %d octets" (String.length serial) ]
        else Pass);
    mk ~name:"e_serial_number_not_positive"
      ~description:"Serial numbers must be positive (RFC 5280)."
      ~source:Rfc5280 ~level:Must ~nc_type:Illegal_format ~effective:rfc5280_date
      (fun ctx ->
        let serial = ctx.Ctx.cert.X509.Certificate.tbs.X509.Certificate.serial in
        if serial = "" || Char.code serial.[0] >= 0x80
           || String.for_all (fun c -> c = '\x00') serial
        then Fail [ "serial is zero or negative" ]
        else Pass);
    mk ~name:"e_validity_time_wrong_form"
      ~description:
        "Dates through 2049 must use UTCTime; later dates GeneralizedTime \
         (RFC 5280 §4.1.2.5)."
      ~source:Rfc5280 ~level:Must ~nc_type:Illegal_format ~effective:rfc5280_date
      (fun ctx ->
        let check label ((t : Asn1.Time.t), form) =
          match (t.Asn1.Time.year < 2050, form) with
          | true, X509.Certificate.Generalized ->
              Some (label ^ " uses GeneralizedTime for a pre-2050 date")
          | false, X509.Certificate.Utc ->
              Some (label ^ " uses UTCTime for a post-2049 date")
          | true, X509.Certificate.Utc | false, X509.Certificate.Generalized -> None
        in
        let tbs = ctx.Ctx.cert.X509.Certificate.tbs in
        emit Must
          (List.filter_map Fun.id
             [ check "notBefore" tbs.X509.Certificate.not_before;
               check "notAfter" tbs.X509.Certificate.not_after ]));
    mk ~name:"e_subject_empty_attribute_value"
      ~description:"Subject attribute values must not be empty."
      ~source:Cab_br ~level:Must ~nc_type:Illegal_format ~effective:cab_br_date
      (fun ctx ->
        let bad =
          List.filter_map
            (fun (v : Ctx.aval) ->
              if v.Ctx.a_raw = "" then Some (X509.Attr.name v.Ctx.a_attr ^ " is empty")
              else None)
            (subject_values ctx)
        in
        emit Must bad);
    mk ~name:"e_san_dnsname_empty"
      ~description:"SAN dNSName entries must not be empty."
      ~source:Cab_br ~level:Must ~nc_type:Illegal_format ~effective:cab_br_date
      (fun ctx ->
        let bad =
          List.filter_map
            (fun gn ->
              match gn with
              | X509.General_name.Dns_name "" -> Some "empty dNSName"
              | _ -> None)
            (san_names ctx)
        in
        emit Must bad);
    mk ~name:"e_dnsname_label_empty"
      ~description:"DNSNames must not contain empty labels (consecutive dots)."
      ~source:Rfc1034 ~level:Must ~nc_type:Illegal_format ~effective:rfc5280_date
      (fun ctx ->
        let bad =
          List.filter_map
            (fun fact ->
              if fact.Ctx.d_name <> "" && List.mem Idna.Dns.Empty_label fact.Ctx.d_dns
              then Some (Printf.sprintf "%S contains an empty label" fact.Ctx.d_name)
              else None)
            ctx.Ctx.dns_facts
        in
        emit Must bad);
    mk ~name:"e_dnsname_wildcard_malformed"
      ~description:
        "Wildcards must be a sole asterisk in the left-most label (CA/B BR)."
      ~source:Cab_br ~level:Must ~nc_type:Illegal_format ~effective:cab_br_date
      (fun ctx ->
        let bad =
          List.filter_map
            (fun fact ->
              let name = fact.Ctx.d_name in
              if not (String.contains name '*') then None
              else
                match fact.Ctx.d_labels with
                | "*" :: rest when not (List.exists (fun l -> String.contains l '*') rest)
                  ->
                    None
                | _ -> Some (Printf.sprintf "%S uses a malformed wildcard" name))
            ctx.Ctx.dns_facts
        in
        emit Must bad);
    mk ~name:"e_rfc822_name_no_at_sign"
      ~description:"rfc822Name values must be mailboxes containing a single @."
      ~source:Rfc5280 ~level:Must ~nc_type:Illegal_format ~effective:rfc5280_date
      (fun ctx ->
        let bad =
          List.filter_map
            (fun gn ->
              match gn with
              | X509.General_name.Rfc822_name s ->
                  let ats = String.fold_left (fun n c -> if c = '@' then n + 1 else n) 0 s in
                  if ats <> 1 then Some (Printf.sprintf "rfc822Name %S has %d @ signs" s ats)
                  else None
              | _ -> None)
            (san_names ctx @ ian_names ctx)
        in
        emit Must bad);
  ]
