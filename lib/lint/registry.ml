let all =
  Lints_character.lints @ Lints_normalization.lints @ Lints_format.lints
  @ Lints_encoding.lints @ Lints_structure.lints

(* Duplicate lint names would silently skew every aggregate. *)
let () =
  let names = List.map (fun (l : Types.t) -> l.Types.name) all in
  let unique = List.sort_uniq String.compare names in
  if List.length names <> List.length unique then
    invalid_arg "Lint registry contains duplicate names"

(* O(1) lookup tables, built once at module init (read-only afterwards,
   so safe to share across domains).  [find] runs once per stored lint
   name when replaying analysis rows — linear scans over 95 lints were
   measurable at store scale. *)
let by_name_tbl =
  let tbl = Hashtbl.create 256 in
  List.iter (fun (l : Types.t) -> Hashtbl.replace tbl l.Types.name l) all;
  tbl

let find name = Hashtbl.find_opt by_name_tbl name

let by_type_tbl =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (l : Types.t) ->
      Hashtbl.replace tbl l.Types.nc_type
        (l :: Option.value ~default:[] (Hashtbl.find_opt tbl l.Types.nc_type)))
    all;
  List.iter
    (fun ty -> Hashtbl.replace tbl ty (List.rev (Hashtbl.find tbl ty)))
    (List.sort_uniq compare
       (List.map (fun (l : Types.t) -> l.Types.nc_type) all));
  tbl

let by_type t = Option.value ~default:[] (Hashtbl.find_opt by_type_tbl t)

let counts_by_type t =
  let lints = by_type t in
  (List.length lints, List.length (List.filter (fun (l : Types.t) -> l.Types.is_new) lints))

(* --- telemetry ------------------------------------------------------ *)

(* One instrument record per lint, resolved once and threaded through
   the runner as a parallel array: the hot loop (95 lints x every
   corpus certificate) must only pay float adds, never a
   name-to-counter lookup.  Per-lint wall clock is sampled (one timed
   invocation in [time_sample], scaled back up) so the estimate stays
   useful while the common path skips the clock entirely. *)
type instr = {
  invocations : Obs.Counter.t;  (** checks actually run (non-NA) *)
  fail : Obs.Counter.t;
  warn : Obs.Counter.t;
  na : Obs.Counter.t;
  seconds : Obs.Counter.t;      (** sampled cumulative check time *)
  tick : int Atomic.t;
  breaker : Faults.Breaker.t;
}

let time_sample = 8

let instruments =
  lazy
    (let mk family (l : Types.t) =
       Obs.Counter.Labeled.get family l.Types.name
     in
     let invocations =
       Obs.Registry.labeled_counter ~label:"lint"
         ~help:"Lint checks executed (excluding effective-date NA skips)"
         "unicert_lint_invocations_total"
     and fail =
       Obs.Registry.labeled_counter ~label:"lint"
         ~help:"Fail findings per lint" "unicert_lint_fail_total"
     and warn =
       Obs.Registry.labeled_counter ~label:"lint"
         ~help:"Warn findings per lint" "unicert_lint_warn_total"
     and na =
       Obs.Registry.labeled_counter ~label:"lint"
         ~help:"Effective-date NA skips per lint" "unicert_lint_na_total"
     and seconds =
       Obs.Registry.labeled_counter ~label:"lint"
         ~help:
           (Printf.sprintf
              "Cumulative check wall-clock per lint (sampled 1/%d, scaled)"
              time_sample)
         "unicert_lint_seconds_total"
     in
     List.map
       (fun l ->
         { invocations = mk invocations l; fail = mk fail l; warn = mk warn l;
           na = mk na l; seconds = mk seconds l; tick = Atomic.make 0;
           breaker = Faults.Breaker.create l.Types.name })
       all)

(* The check body, with the fault-injection hook.  [Injector.active]
   is a single bool read when no injection campaign is armed, so the
   clean path stays flat. *)
let invoke (l : Types.t) ctx =
  if Faults.Injector.active () then Faults.Injector.tick l.Types.name;
  l.Types.check ctx

let checked ins (l : Types.t) ctx =
  if Faults.Breaker.tripped ins.breaker then Types.Na
  else begin
    let tick = 1 + Atomic.fetch_and_add ins.tick 1 in
    Obs.Counter.inc ins.invocations;
    (* Per-lint trace spans are sampled (--trace-sample): 95 lints per
       certificate would otherwise dominate the ring.  The sampling
       decision reuses [ins.tick] — this path runs once per lint per
       certificate, and [sampled_span]'s own per-domain counter is
       measurably slower at that rate. *)
    let body () =
      if tick mod time_sample = 0 then begin
        let t0 = Unix.gettimeofday () in
        let status = invoke l ctx in
        Obs.Counter.add ins.seconds
          ((Unix.gettimeofday () -. t0) *. float_of_int time_sample);
        status
      end
      else invoke l ctx
    in
    match
      if Obs.Trace.sample_hit tick then
        Obs.Trace.span ~cat:"lint" l.Types.name body
      else body ()
    with
    | status ->
        Faults.Breaker.success ins.breaker;
        (match status with
        | Types.Fail _ -> Obs.Counter.inc ins.fail
        | Types.Warn _ -> Obs.Counter.inc ins.warn
        | Types.Na | Types.Pass -> ());
        status
    (* The error boundary: one crashing lint degrades to NA for this
       certificate instead of killing the run.  Disabled only by the
       benchmark kill-switch. *)
    | exception e when Faults.Isolation.enabled () ->
        Faults.Breaker.failure ins.breaker;
        Faults.Error.observe
          (Faults.Error.Lint_crash
             { lint = l.Types.name;
               exn_name = Faults.Error.exn_name e;
               detail = Printexc.to_string e });
        Types.Na
  end

type lint_obs = {
  lint_name : string;
  invoked : float;
  failed : float;
  warned : float;
  skipped_na : float;
  est_seconds : float;
}

let obs_snapshot () =
  List.map2
    (fun (l : Types.t) ins ->
      { lint_name = l.Types.name;
        invoked = Obs.Counter.value ins.invocations;
        failed = Obs.Counter.value ins.fail;
        warned = Obs.Counter.value ins.warn;
        skipped_na = Obs.Counter.value ins.na;
        est_seconds = Obs.Counter.value ins.seconds })
    all (Lazy.force instruments)

(* --- the runner ----------------------------------------------------- *)

let run_checks ~respect_effective_dates ~include_new ~only ~issued ctx =
  let wanted =
    match only with None -> fun _ -> true | Some p -> p
  in
  (* Hand-rolled two-list filter_map: this runs once per corpus
     certificate, so no intermediate option list. *)
  let rec go ls inss acc =
    match (ls, inss) with
    | [], _ -> List.rev acc
    | (l : Types.t) :: ls, ins :: inss ->
        if ((not include_new) && l.Types.is_new) || not (wanted l) then
          go ls inss acc
        else if
          respect_effective_dates && Asn1.Time.(issued < l.Types.effective_date)
        then begin
          Obs.Counter.inc ins.na;
          go ls inss ({ Types.lint = l; status = Types.Na } :: acc)
        end
        else go ls inss ({ Types.lint = l; status = checked ins l ctx } :: acc)
    | _ :: _, [] -> assert false
  in
  go all (Lazy.force instruments) []

let run_ctx ?(respect_effective_dates = true) ?(include_new = true) ?only
    ~issued ctx =
  Obs.Span.with_ "lint" @@ fun () ->
  run_checks ~respect_effective_dates ~include_new ~only ~issued ctx

let run ?(respect_effective_dates = true) ?(include_new = true) ?only ~issued
    cert =
  Obs.Span.with_ "lint" @@ fun () ->
  run_checks ~respect_effective_dates ~include_new ~only ~issued
    (Ctx.of_cert cert)

(* Batch entry point: the instrument list is forced and the
   [include_new]/[only] selection computed once for the whole batch,
   then each certificate runs just the pre-selected lints over its own
   fact table. *)
let run_batch ?(respect_effective_dates = true) ?(include_new = true) ?only
    entries =
  let wanted =
    match only with None -> fun _ -> true | Some p -> p
  in
  let selected =
    List.filter
      (fun ((l : Types.t), _) -> (include_new || not l.Types.is_new) && wanted l)
      (List.combine all (Lazy.force instruments))
  in
  List.map
    (fun (issued, cert) ->
      Obs.Span.with_ "lint" @@ fun () ->
      let ctx = Ctx.of_cert cert in
      List.map
        (fun ((l : Types.t), ins) ->
          if
            respect_effective_dates
            && Asn1.Time.(issued < l.Types.effective_date)
          then begin
            Obs.Counter.inc ins.na;
            { Types.lint = l; status = Types.Na }
          end
          else { Types.lint = l; status = checked ins l ctx })
        selected)
    entries

let noncompliant ?respect_effective_dates ?include_new ~issued cert =
  run ?respect_effective_dates ?include_new ~issued cert
  |> List.filter Types.is_noncompliant

(* --- fault accounting ----------------------------------------------- *)

let fault_snapshot () =
  List.filter_map
    (fun ins ->
      let b = ins.breaker in
      if Faults.Breaker.crashes b > 0 then
        Some (Faults.Breaker.name b, Faults.Breaker.crashes b, Faults.Breaker.tripped b)
      else None)
    (Lazy.force instruments)

let degraded () =
  List.filter_map
    (fun ins ->
      if Faults.Breaker.tripped ins.breaker then
        Some (Faults.Breaker.name ins.breaker, Faults.Breaker.crashes ins.breaker)
      else None)
    (Lazy.force instruments)

let set_breaker_threshold n =
  List.iter (fun ins -> Faults.Breaker.set_threshold ins.breaker n)
    (Lazy.force instruments)

let reset_faults () =
  List.iter (fun ins -> Faults.Breaker.reset ins.breaker) (Lazy.force instruments)
