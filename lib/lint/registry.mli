(** The lint registry: the full 95-rule catalogue and the per-certificate
    runner. *)

val all : Types.t list
(** Every registered lint — 95 rules, 50 of them the paper's new
    Unicode-specific checks (asserted by the test suite). *)

val find : string -> Types.t option
(** [find name] looks a lint up by name — a hashtable hit, not a scan
    (stored-row replay calls this once per recorded lint name). *)

val by_type : Types.nc_type -> Types.t list
(** Lints of a taxonomy type, in registry order (precomputed). *)

val counts_by_type : Types.nc_type -> int * int
(** [(all, new)] lint counts for a taxonomy type — the "#Lints" columns
    of Table 1. *)

val run :
  ?respect_effective_dates:bool ->
  ?include_new:bool ->
  ?only:(Types.t -> bool) ->
  issued:Asn1.Time.t ->
  X509.Certificate.t ->
  Types.finding list
(** [run ~issued cert] evaluates every applicable lint.
    [respect_effective_dates] (default [true]) skips lints whose
    effective date is after [issued] — disabling it reproduces the
    paper's footnote-4 ablation (249.3K → 1.8M).  [include_new]
    (default [true]) set to [false] removes the 50 new lints — the
    "existing linters only" ablation.  [only] restricts the pass to
    lints satisfying the predicate (skipped lints produce no finding
    and no NA count) — the store's incremental recompute runs just the
    lints missing from stored analysis rows. *)

val run_ctx :
  ?respect_effective_dates:bool ->
  ?include_new:bool ->
  ?only:(Types.t -> bool) ->
  issued:Asn1.Time.t ->
  Ctx.t ->
  Types.finding list
(** [run_ctx ~issued ctx] is {!run} over a caller-built fact table.
    The fused pipeline builds one {!Ctx.t} per certificate (under the
    parse span) and shares it between linting, classification and the
    encoding-error scan; here the ["lint"] span covers only the checks
    themselves. *)

val run_batch :
  ?respect_effective_dates:bool ->
  ?include_new:bool ->
  ?only:(Types.t -> bool) ->
  (Asn1.Time.t * X509.Certificate.t) list ->
  Types.finding list list
(** [run_batch entries] is [List.map (fun (issued, cert) -> run ~issued
    cert) entries] with the per-run setup — forcing the instrument
    list, applying [include_new]/[only] — paid once for the whole
    batch. *)

val noncompliant :
  ?respect_effective_dates:bool ->
  ?include_new:bool ->
  issued:Asn1.Time.t ->
  X509.Certificate.t ->
  Types.finding list
(** Like {!run} but keeping only [Warn]/[Fail] findings. *)

(** {2 Telemetry}

    Every {!run} feeds per-lint counters in {!Obs.Registry.default}
    ([unicert_lint_invocations_total], [..._fail_total],
    [..._warn_total], [..._na_total]) and a sampled cumulative-time
    estimate ([unicert_lint_seconds_total]), plus the ["lint"] span
    histogram.  Counters are process-cumulative. *)

type lint_obs = {
  lint_name : string;
  invoked : float;      (** checks executed (non-NA) *)
  failed : float;
  warned : float;
  skipped_na : float;   (** effective-date gated skips *)
  est_seconds : float;  (** sampled wall-clock estimate *)
}

val obs_snapshot : unit -> lint_obs list
(** Current counter values, one record per registered lint, in
    {!all} order. *)

(** {2 Fault isolation}

    Every check runs behind an error boundary: a raising lint records a
    [Lint_crash] and degrades to [Na] for that certificate.  A
    per-lint circuit breaker opens after
    {!Faults.Breaker.default_threshold} consecutive crashes, skipping
    the lint (status [Na]) for the rest of the process and reporting it
    degraded. *)

val fault_snapshot : unit -> (string * int * bool) list
(** [(name, total crashes, breaker open)] for every lint that has
    crashed at least once.  Process-cumulative — callers tracking one
    run should diff two snapshots. *)

val degraded : unit -> (string * int) list
(** Lints whose breaker is currently open, with total crash counts. *)

val set_breaker_threshold : int -> unit
(** Apply a trip threshold to every lint breaker (policy wiring). *)

val reset_faults : unit -> unit
(** Close every breaker and zero crash counts (test support). *)
