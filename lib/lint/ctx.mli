(** Pre-parsed certificate context shared by all lints.

    This is the fused engine's fact table: the certificate is decoded
    once, and every derived fact the 95 lints consult — per-ATV code
    points, Unicode property masks, NFC results, per-DNS-name label
    checks and IDNA round-trips — is computed in that single traversal.
    Lints then run as lookups over these records. *)

type atv_info = {
  atv : X509.Dn.atv;
  cps : Unicode.Cp.t array option;
      (** strict standard decoding; [None] when the raw bytes are
          invalid for the declared string type *)
  lenient_cps : Unicode.Cp.t array;
      (** replacement decoding, always available *)
  in_issuer : bool;
}

type aval = {
  a_attr : X509.Attr.t;
  a_st : Asn1.Str_type.t;
  a_raw : string;
  a_cps : Unicode.Cp.t array;  (** lenient decoding *)
  a_mask : int;
      (** OR of {!Unicode.Props.mask} over [a_cps] — a lint tests
          class membership of the whole value with one [land] *)
  a_has_hi : bool;  (** any raw byte >= 0x80 *)
  a_nfc : bool;
      (** NFC check result; [true] for non-UTF8String values *)
}
(** Derived facts for one string-typed ATV. *)

type dns_fact = {
  d_name : string;
  d_labels : string list;
  d_dns : Idna.Dns.issue list;  (** [Idna.Dns.check d_name] *)
  d_alabels : (string * Idna.issue list) list;
      (** xn-- labels with their [Idna.alabel_issues] *)
}
(** Derived facts for one DNS name the IDN lints inspect. *)

type general_names = X509.General_name.t list

type t = {
  cert : X509.Certificate.t;
  subject : atv_info list;
  issuer : atv_info list;
  subject_vals : aval list;
  issuer_vals : aval list;
  all_vals : aval list;  (** [subject_vals @ issuer_vals], precomputed *)
  dns_facts : dns_fact list;
      (** SAN dNSNames plus DNS-shaped subject CNs, in that order *)
  san : (general_names, string) result option;
      (** [None] = extension absent; [Some (Error _)] = unparsable *)
  ian : (general_names, string) result option;
  crldp_names : (general_names, string) result option;
  aia : ((Asn1.Oid.t * X509.General_name.t) list, string) result option;
  sia : ((Asn1.Oid.t * X509.General_name.t) list, string) result option;
  policies : (X509.Extension.policy list, string) result option;
  etexts : (Asn1.Str_type.t * string) list;
      (** CertificatePolicies userNotice explicitText values *)
}

val of_cert : X509.Certificate.t -> t

val dns_names : t -> string list
(** All dNSName payloads from SAN plus the subject CN values that look
    like DNS names — the fields the IDN lints inspect. *)

val subject_texts : t -> (X509.Attr.t * string) list
(** Decoded (leniently) subject attribute texts, in order. *)

val san_dns : t -> string list
(** Raw dNSName payloads from the SAN extension only. *)
