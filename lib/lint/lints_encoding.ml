(* T3b — Invalid Encoding lints: unsupported or deprecated ASN.1 string
   types and physically broken encodings.  48 lints, 37 of them the
   paper's new Unicode-specific checks. *)

open Types
open Helpers

let st_name = Asn1.Str_type.name

(* Attribute must be encoded with one of [allowed] string types. *)
let attr_encoding_lint ~name ~attr ~in_issuer ~allowed ~source ~level ~is_new ~effective
    ~description =
  mk ~name ~description ~source ~level ~nc_type:Invalid_encoding ~is_new ~effective
    (fun ctx ->
      let values = if in_issuer then issuer_values ~attrs:[ attr ] ctx
                   else subject_values ~attrs:[ attr ] ctx in
      let bad =
        List.filter_map
          (fun (v : Ctx.aval) ->
            if List.mem v.Ctx.a_st allowed then None
            else
              Some
                (Printf.sprintf "%s%s encoded as %s"
                   (if in_issuer then "issuer " else "")
                   (X509.Attr.name attr) (st_name v.Ctx.a_st)))
          values
      in
      emit level bad)

let printable_or_utf8 = [ Asn1.Str_type.Printable_string; Asn1.Str_type.Utf8_string ]

let not_printable_or_utf8 name attr =
  attr_encoding_lint ~name ~attr ~in_issuer:false ~allowed:printable_or_utf8
    ~source:Cab_br ~level:Must ~is_new:true ~effective:cab_br_date
    ~description:
      (Printf.sprintf "%s must be encoded as PrintableString or UTF8String (CA/B BR)."
         (X509.Attr.name attr))

(* GeneralName payloads are IA5String; raw bytes above 0x7F violate the
   declared encoding. *)
let gn_ia5_lint ~name ~what ~select ~effective ~is_new =
  mk ~name
    ~description:
      (Printf.sprintf "%s values are IA5String and must stay within 7-bit ASCII." what)
    ~source:Rfc5280 ~level:Must ~nc_type:Invalid_encoding ~is_new ~effective
    (fun ctx ->
      let bad =
        List.concat_map
          (fun (kind, payload) ->
            non_ia5 payload
            |> List.map (fun b -> Printf.sprintf "%s %s byte 0x%02X" what kind b))
          (gn_strings (select ctx))
      in
      emit Must bad)

(* Byte-pattern scans over declared UTF8String payloads.  Both scanners
   only ever match bytes >= 0x80, so pure-ASCII payloads (the cached
   [a_has_hi] bit) skip the scan. *)
let utf8_pattern_lint ~name ~description ~is_new ~level ~source ~effective pred =
  mk ~name ~description ~source ~level ~nc_type:Invalid_encoding ~is_new ~effective
    (fun ctx ->
      let bad =
        List.concat_map
          (fun (v : Ctx.aval) ->
            if v.Ctx.a_st <> Asn1.Str_type.Utf8_string || not v.Ctx.a_has_hi then []
            else
              pred v.Ctx.a_raw
              |> List.map (fun m -> X509.Attr.name v.Ctx.a_attr ^ ": " ^ m))
          (all_values ctx)
      in
      emit level bad)

let overlong_sequences raw =
  let issues = ref [] in
  String.iteri
    (fun i c ->
      let b = Char.code c in
      if b = 0xC0 || b = 0xC1 then
        issues := Printf.sprintf "overlong UTF-8 lead byte 0x%02X at %d" b i :: !issues
      else if b = 0xE0 && i + 1 < String.length raw && Char.code raw.[i + 1] < 0xA0
              && Char.code raw.[i + 1] >= 0x80 then
        issues := Printf.sprintf "overlong 3-byte sequence at %d" i :: !issues
      else if b = 0xF0 && i + 1 < String.length raw && Char.code raw.[i + 1] < 0x90
              && Char.code raw.[i + 1] >= 0x80 then
        issues := Printf.sprintf "overlong 4-byte sequence at %d" i :: !issues)
    raw;
  List.rev !issues

let surrogate_sequences raw =
  let issues = ref [] in
  String.iteri
    (fun i c ->
      if Char.code c = 0xED && i + 1 < String.length raw
         && Char.code raw.[i + 1] >= 0xA0 && Char.code raw.[i + 1] <= 0xBF
      then issues := Printf.sprintf "UTF-8-encoded surrogate at %d" i :: !issues)
    raw;
  List.rev !issues

let explicit_texts ctx = ctx.Ctx.etexts

let lints : Types.t list =
  [
    (* ------------------------------------------------------------------
       Established lints (11) *)
    mk ~name:"w_rfc_ext_cp_explicit_text_not_utf8"
      ~description:
        "CertificatePolicies explicitText SHOULD be encoded as UTF8String \
         (RFC 5280 §4.2.1.4)."
      ~source:Rfc5280 ~level:Should ~nc_type:Invalid_encoding ~effective:rfc5280_date
      (fun ctx ->
        let texts = explicit_texts ctx in
        if texts = [] then Na
        else
          emit Should
            (List.filter_map
               (fun (st, _) ->
                 if st = Asn1.Str_type.Utf8_string then None
                 else Some (Printf.sprintf "explicitText encoded as %s" (st_name st)))
               texts));
    mk ~name:"e_rfc_ext_cp_explicit_text_ia5"
      ~description:"explicitText MUST NOT be IA5String (RFC 5280 §4.2.1.4)."
      ~source:Rfc5280 ~level:Must_not ~nc_type:Invalid_encoding ~effective:rfc5280_date
      (fun ctx ->
        let texts = explicit_texts ctx in
        if texts = [] then Na
        else
          emit Must_not
            (List.filter_map
               (fun (st, _) ->
                 if st = Asn1.Str_type.Ia5_string then Some "explicitText is IA5String"
                 else None)
               texts));
    attr_encoding_lint ~name:"e_rfc_subject_country_not_printable"
      ~attr:X509.Attr.Country_name ~in_issuer:false
      ~allowed:[ Asn1.Str_type.Printable_string ] ~source:Rfc5280 ~level:Must
      ~is_new:false ~effective:rfc5280_date
      ~description:"countryName must be a PrintableString (RFC 5280)." ;
    attr_encoding_lint ~name:"e_subject_dn_serial_number_not_printable"
      ~attr:X509.Attr.Serial_number ~in_issuer:false
      ~allowed:[ Asn1.Str_type.Printable_string ] ~source:Rfc5280 ~level:Must
      ~is_new:false ~effective:rfc5280_date
      ~description:"serialNumber must be a PrintableString (RFC 5280)." ;
    attr_encoding_lint ~name:"e_subject_email_address_not_ia5"
      ~attr:X509.Attr.Email_address ~in_issuer:false
      ~allowed:[ Asn1.Str_type.Ia5_string ] ~source:Rfc5280 ~level:Must ~is_new:false
      ~effective:rfc5280_date
      ~description:"emailAddress must be an IA5String (RFC 5280)." ;
    attr_encoding_lint ~name:"e_subject_dc_not_ia5" ~attr:X509.Attr.Domain_component
      ~in_issuer:false ~allowed:[ Asn1.Str_type.Ia5_string ] ~source:Rfc5280 ~level:Must
      ~is_new:false ~effective:rfc5280_date
      ~description:"domainComponent must be an IA5String (RFC 4519/5280)." ;
    mk ~name:"w_subject_dn_uses_teletex_string"
      ~description:
        "TeletexString is deprecated for new subjects (RFC 5280: UTF8String or \
         PrintableString SHOULD be used)."
      ~source:Rfc5280 ~level:Should_not ~nc_type:Invalid_encoding ~effective:rfc5280_date
      (fun ctx ->
        emit Should_not
          (List.filter_map
             (fun (v : Ctx.aval) ->
               if v.Ctx.a_st = Asn1.Str_type.Teletex_string then
                 Some (X509.Attr.name v.Ctx.a_attr ^ " uses TeletexString")
               else None)
             (subject_values ctx)));
    mk ~name:"w_subject_dn_uses_bmp_string"
      ~description:"BMPString is deprecated for new subjects (RFC 5280)."
      ~source:Rfc5280 ~level:Should_not ~nc_type:Invalid_encoding ~effective:rfc5280_date
      (fun ctx ->
        emit Should_not
          (List.filter_map
             (fun (v : Ctx.aval) ->
               if v.Ctx.a_st = Asn1.Str_type.Bmp_string then
                 Some (X509.Attr.name v.Ctx.a_attr ^ " uses BMPString")
               else None)
             (subject_values ctx)));
    mk ~name:"w_subject_dn_uses_universal_string"
      ~description:"UniversalString is deprecated for new subjects (RFC 5280)."
      ~source:Rfc5280 ~level:Should_not ~nc_type:Invalid_encoding ~effective:rfc5280_date
      (fun ctx ->
        emit Should_not
          (List.filter_map
             (fun (v : Ctx.aval) ->
               if v.Ctx.a_st = Asn1.Str_type.Universal_string then
                 Some (X509.Attr.name v.Ctx.a_attr ^ " uses UniversalString")
               else None)
             (subject_values ctx)));
    mk ~name:"e_utf8string_invalid_byte_sequence"
      ~description:
        "UTF8String payloads (DN values and policy explicitText) must be \
         well-formed UTF-8."
      ~source:Rfc5280 ~level:Must ~nc_type:Invalid_encoding ~effective:rfc5280_date
      (fun ctx ->
        let dn_issues =
          List.filter_map
            (fun (v : Ctx.aval) ->
              (* ASCII-only payloads are trivially well-formed *)
              if v.Ctx.a_st = Asn1.Str_type.Utf8_string && v.Ctx.a_has_hi
                 && not (Unicode.Codec.well_formed_utf8 v.Ctx.a_raw)
              then
                Some (X509.Attr.name v.Ctx.a_attr ^ " UTF8String is not well-formed UTF-8")
              else None)
            (all_values ctx)
        in
        let policy_issues =
          List.filter_map
            (fun (st, raw) ->
              if st = Asn1.Str_type.Utf8_string
                 && not (Unicode.Codec.well_formed_utf8 raw)
              then Some "explicitText UTF8String is not well-formed UTF-8"
              else None)
            (explicit_texts ctx)
        in
        emit Must (dn_issues @ policy_issues));
    mk ~name:"e_bmpstring_odd_number_of_bytes"
      ~description:"BMPString payloads must be an even number of octets."
      ~source:X680 ~level:Must ~nc_type:Invalid_encoding ~effective:rfc5280_date
      (fun ctx ->
        emit Must
          (List.filter_map
             (fun (v : Ctx.aval) ->
               if v.Ctx.a_st = Asn1.Str_type.Bmp_string && String.length v.Ctx.a_raw mod 2 = 1
               then Some (X509.Attr.name v.Ctx.a_attr ^ " BMPString has odd length")
               else None)
             (all_values ctx)));
    (* ------------------------------------------------------------------
       New lints: subject DirectoryString encodings (14) *)
    not_printable_or_utf8 "e_subject_common_name_not_printable_or_utf8"
      X509.Attr.Common_name;
    not_printable_or_utf8 "e_subject_organization_not_printable_or_utf8"
      X509.Attr.Organization_name;
    not_printable_or_utf8 "e_subject_ou_not_printable_or_utf8"
      X509.Attr.Organizational_unit_name;
    not_printable_or_utf8 "e_subject_locality_not_printable_or_utf8"
      X509.Attr.Locality_name;
    not_printable_or_utf8 "e_subject_state_not_printable_or_utf8"
      X509.Attr.State_or_province_name;
    not_printable_or_utf8 "e_subject_street_not_printable_or_utf8"
      X509.Attr.Street_address;
    not_printable_or_utf8 "e_subject_postal_code_not_printable_or_utf8"
      X509.Attr.Postal_code;
    not_printable_or_utf8 "e_subject_given_name_not_printable_or_utf8"
      X509.Attr.Given_name;
    not_printable_or_utf8 "e_subject_surname_not_printable_or_utf8" X509.Attr.Surname;
    not_printable_or_utf8 "e_subject_business_category_not_printable_or_utf8"
      X509.Attr.Business_category;
    not_printable_or_utf8 "e_subject_title_not_printable_or_utf8" X509.Attr.Title;
    not_printable_or_utf8 "e_subject_jurisdiction_locality_not_printable_or_utf8"
      X509.Attr.Jurisdiction_locality;
    not_printable_or_utf8 "e_subject_jurisdiction_state_not_printable_or_utf8"
      X509.Attr.Jurisdiction_state;
    attr_encoding_lint ~name:"e_subject_jurisdiction_country_not_printable"
      ~attr:X509.Attr.Jurisdiction_country ~in_issuer:false
      ~allowed:[ Asn1.Str_type.Printable_string ] ~source:Cab_br ~level:Must
      ~is_new:true ~effective:cab_br_date
      ~description:"jurisdictionCountryName must be a PrintableString (CA/B EVG)." ;
    (* Issuer-side encodings (3) *)
    attr_encoding_lint ~name:"e_issuer_common_name_not_printable_or_utf8"
      ~attr:X509.Attr.Common_name ~in_issuer:true ~allowed:printable_or_utf8
      ~source:Cab_br ~level:Must ~is_new:true ~effective:cab_br_date
      ~description:"Issuer commonName must be PrintableString or UTF8String." ;
    attr_encoding_lint ~name:"e_issuer_organization_not_printable_or_utf8"
      ~attr:X509.Attr.Organization_name ~in_issuer:true ~allowed:printable_or_utf8
      ~source:Cab_br ~level:Must ~is_new:true ~effective:cab_br_date
      ~description:"Issuer organizationName must be PrintableString or UTF8String." ;
    attr_encoding_lint ~name:"e_issuer_country_not_printable"
      ~attr:X509.Attr.Country_name ~in_issuer:true
      ~allowed:[ Asn1.Str_type.Printable_string ] ~source:Rfc5280 ~level:Must
      ~is_new:true ~effective:rfc5280_date
      ~description:"Issuer countryName must be a PrintableString." ;
    (* GeneralName IA5 payloads (7) *)
    gn_ia5_lint ~name:"e_ext_san_dnsname_not_ia5" ~what:"SAN dNSName"
      ~select:(fun ctx ->
        List.filter (function X509.General_name.Dns_name _ -> true | _ -> false)
          (san_names ctx))
      ~effective:rfc5280_date ~is_new:true;
    gn_ia5_lint ~name:"e_ext_san_rfc822_not_ia5" ~what:"SAN rfc822Name"
      ~select:(fun ctx ->
        List.filter (function X509.General_name.Rfc822_name _ -> true | _ -> false)
          (san_names ctx))
      ~effective:rfc5280_date ~is_new:true;
    gn_ia5_lint ~name:"e_ext_san_uri_not_ia5" ~what:"SAN URI"
      ~select:(fun ctx ->
        List.filter (function X509.General_name.Uri _ -> true | _ -> false)
          (san_names ctx))
      ~effective:rfc5280_date ~is_new:true;
    gn_ia5_lint ~name:"e_ext_ian_name_not_ia5" ~what:"IssuerAltName"
      ~select:ian_names ~effective:rfc5280_date ~is_new:true;
    gn_ia5_lint ~name:"e_ext_crldp_uri_not_ia5" ~what:"CRLDistributionPoints"
      ~select:crldp_list ~effective:rfc5280_date ~is_new:true;
    gn_ia5_lint ~name:"e_ext_aia_location_not_ia5" ~what:"AIA accessLocation"
      ~select:aia_locations ~effective:rfc5280_date ~is_new:true;
    gn_ia5_lint ~name:"e_ext_sia_location_not_ia5" ~what:"SIA accessLocation"
      ~select:sia_locations ~effective:rfc5280_date ~is_new:true;
    (* Unicode instead of Punycode (2) *)
    mk ~name:"e_ext_san_dns_unicode_not_punycode"
      ~description:
        "Internationalized names in SAN dNSName must be A-labels, not raw \
         UTF-8 U-labels (RFC 5280 §7.2)."
      ~source:Rfc5280 ~level:Must ~nc_type:Invalid_encoding ~is_new:true
      ~effective:rfc5280_date
      (fun ctx ->
        emit Must
          (List.filter_map
             (fun gn ->
               match gn with
               | X509.General_name.Dns_name s
                 when non_ia5 s <> [] && Unicode.Codec.well_formed_utf8 s ->
                   Some (Printf.sprintf "dNSName %S carries a raw U-label" s)
               | _ -> None)
             (san_names ctx)));
    mk ~name:"e_subject_cn_dns_unicode_not_punycode"
      ~description:
        "Domain names in the subject CN must use A-labels for IDNs (CA/B BR)."
      ~source:Cab_br ~level:Must ~nc_type:Invalid_encoding ~is_new:true
      ~effective:cab_br_date
      (fun ctx ->
        emit Must
          (List.filter_map
             (fun (v : Ctx.aval) ->
               if v.Ctx.a_mask land Unicode.Props.m_nonascii = 0 then None
               else
                 let text = Unicode.Codec.utf8_of_cps v.Ctx.a_cps in
                 if String.contains text '.' && not (String.contains text ' ') then
                   Some (Printf.sprintf "CN %S carries a raw U-label domain" text)
                 else None)
             (subject_values ~attrs:[ X509.Attr.Common_name ] ctx)));
    (* Physical payload checks (11) *)
    mk ~name:"e_bmpstring_utf16_surrogate_pairs"
      ~description:
        "BMPString is UCS-2; UTF-16 surrogate pairs (astral characters) are \
         not representable (X.680)."
      ~source:X680 ~level:Must ~nc_type:Invalid_encoding ~is_new:true
      ~effective:rfc5280_date
      (fun ctx ->
        emit Must
          (List.filter_map
             (fun (v : Ctx.aval) ->
               if v.Ctx.a_st <> Asn1.Str_type.Bmp_string then None
               else
                 let raw = v.Ctx.a_raw in
                 let has_pair = ref false in
                 let i = ref 0 in
                 while !i + 3 < String.length raw do
                   let u = (Char.code raw.[!i] lsl 8) lor Char.code raw.[!i + 1] in
                   let u2 = (Char.code raw.[!i + 2] lsl 8) lor Char.code raw.[!i + 3] in
                   if u >= 0xD800 && u <= 0xDBFF && u2 >= 0xDC00 && u2 <= 0xDFFF then
                     has_pair := true;
                   i := !i + 2
                 done;
                 if !has_pair then
                   Some (X509.Attr.name v.Ctx.a_attr ^ " BMPString contains UTF-16 surrogate pairs")
                 else None)
             (all_values ctx)));
    mk ~name:"e_universalstring_bad_length"
      ~description:"UniversalString payloads must be a multiple of 4 octets."
      ~source:X680 ~level:Must ~nc_type:Invalid_encoding ~is_new:true
      ~effective:rfc5280_date
      (fun ctx ->
        emit Must
          (List.filter_map
             (fun (v : Ctx.aval) ->
               if v.Ctx.a_st = Asn1.Str_type.Universal_string
                  && String.length v.Ctx.a_raw mod 4 <> 0
               then
                 Some (X509.Attr.name v.Ctx.a_attr ^ " UniversalString length not a multiple of 4")
               else None)
             (all_values ctx)));
    mk ~name:"e_universalstring_invalid_code_point"
      ~description:"UniversalString units must be valid Unicode code points."
      ~source:X680 ~level:Must ~nc_type:Invalid_encoding ~is_new:true
      ~effective:rfc5280_date
      (fun ctx ->
        emit Must
          (List.filter_map
             (fun (v : Ctx.aval) ->
               if v.Ctx.a_st <> Asn1.Str_type.Universal_string then None
               else
                 match Unicode.Codec.decode Unicode.Codec.Ucs4 v.Ctx.a_raw with
                 | Ok _ -> None
                 | Error _ ->
                     Some (X509.Attr.name v.Ctx.a_attr ^ " UniversalString has invalid units"))
             (all_values ctx)));
    mk ~name:"w_teletexstring_escape_sequences"
      ~description:
        "TeletexString escape sequences are interpreted inconsistently and \
         should be avoided."
      ~source:Community ~level:Should_not ~nc_type:Invalid_encoding ~is_new:true
      ~effective:community_date
      (fun ctx ->
        emit Should_not
          (List.filter_map
             (fun (v : Ctx.aval) ->
               if v.Ctx.a_st = Asn1.Str_type.Teletex_string
                  && String.contains v.Ctx.a_raw '\x1B'
               then
                 Some (X509.Attr.name v.Ctx.a_attr ^ " TeletexString contains escape sequences")
               else None)
             (all_values ctx)));
    utf8_pattern_lint ~name:"e_utf8string_overlong_encoding"
      ~description:"UTF-8 must use shortest-form encodings (X.690)."
      ~is_new:true ~level:Must ~source:X680 ~effective:rfc5280_date overlong_sequences;
    utf8_pattern_lint ~name:"e_utf8string_encodes_surrogates"
      ~description:"UTF-8 must not encode surrogate code points (CESU-8)."
      ~is_new:true ~level:Must ~source:X680 ~effective:rfc5280_date surrogate_sequences;
    mk ~name:"w_utf8string_noncharacters"
      ~description:"UTF8String values should not contain Unicode noncharacters."
      ~source:Rfc9549 ~level:Should_not ~nc_type:Invalid_encoding ~is_new:true
      ~effective:rfc8399_date
      (fun ctx ->
        emit Should_not
          (List.concat_map
             (fun (v : Ctx.aval) ->
               if
                 v.Ctx.a_st <> Asn1.Str_type.Utf8_string
                 || v.Ctx.a_mask land Unicode.Props.m_noncharacter = 0
               then []
               else
                 Array.to_list v.Ctx.a_cps
                 |> List.filter Unicode.Props.is_noncharacter
                 |> List.map (fun cp ->
                        Printf.sprintf "%s contains noncharacter %s"
                          (X509.Attr.name v.Ctx.a_attr) (describe_cp cp)))
             (all_values ctx)));
    mk ~name:"w_ext_cp_explicit_text_bmp"
      ~description:"explicitText SHOULD NOT use BMPString (RFC 5280 §4.2.1.4)."
      ~source:Rfc5280 ~level:Should_not ~nc_type:Invalid_encoding ~is_new:true
      ~effective:rfc5280_date
      (fun ctx ->
        let texts = explicit_texts ctx in
        if texts = [] then Na
        else
          emit Should_not
            (List.filter_map
               (fun (st, _) ->
                 if st = Asn1.Str_type.Bmp_string then Some "explicitText is BMPString"
                 else None)
               texts));
    mk ~name:"e_ext_san_othername_smtputf8_not_utf8"
      ~description:"SmtpUTF8Mailbox otherName must be a UTF8String (RFC 9598)."
      ~source:Rfc9598 ~level:Must ~nc_type:Invalid_encoding ~is_new:true
      ~effective:rfc9598_date
      (fun ctx ->
        let smtputf8 = smtputf8_oid in
        emit Must
          (List.filter_map
             (fun gn ->
               match gn with
               | X509.General_name.Other_name (oid, raw)
                 when Asn1.Oid.equal oid smtputf8 ->
                   if not (Unicode.Codec.well_formed_utf8 raw) then
                     Some "SmtpUTF8Mailbox is not valid UTF-8"
                   else None
               | _ -> None)
             (san_names ctx)));
    mk ~name:"w_subject_attr_mixed_encodings"
      ~description:
        "Repeated subject attributes should use a consistent string type; \
         mixed encodings hinder matching."
      ~source:Community ~level:Should_not ~nc_type:Invalid_encoding ~is_new:true
      ~effective:community_date
      (fun ctx ->
        let tbl = Hashtbl.create 8 in
        List.iter
          (fun (v : Ctx.aval) ->
            let prev = try Hashtbl.find tbl v.Ctx.a_attr with Not_found -> [] in
            Hashtbl.replace tbl v.Ctx.a_attr (v.Ctx.a_st :: prev))
          (subject_values ctx);
        let bad =
          Hashtbl.fold
            (fun attr sts acc ->
              if List.length (List.sort_uniq Stdlib.compare sts) > 1 then
                (X509.Attr.name attr ^ " uses mixed string types") :: acc
              else acc)
            tbl []
        in
        emit Should_not bad);
    mk ~name:"e_rfc822name_domain_unicode_not_punycode"
      ~description:
        "The domain part of rfc822Name must use A-labels for IDNs (RFC 9598)."
      ~source:Rfc9598 ~level:Must ~nc_type:Invalid_encoding ~is_new:true
      ~effective:rfc9598_date
      (fun ctx ->
        emit Must
          (List.filter_map
             (fun gn ->
               match gn with
               | X509.General_name.Rfc822_name s -> (
                   match String.rindex_opt s '@' with
                   | Some i ->
                       let domain = String.sub s (i + 1) (String.length s - i - 1) in
                       if non_ia5 domain <> [] then
                         Some (Printf.sprintf "rfc822Name domain %S is not ASCII" domain)
                       else None
                   | None -> None)
               | _ -> None)
             (san_names ctx)));
  ]
