type time_form = Utc | Generalized

type spki = { alg : Asn1.Oid.t; key : string }

type tbs = {
  version : int;
  serial : string;
  sig_alg : Asn1.Oid.t;
  issuer : Dn.t;
  not_before : Asn1.Time.t * time_form;
  not_after : Asn1.Time.t * time_form;
  subject : Dn.t;
  spki : spki;
  extensions : Extension.t list;
}

type t = {
  tbs : tbs;
  tbs_der : string;
  outer_sig_alg : Asn1.Oid.t;
  signature : string;
  der : string;
}

module Oids = struct
  let o s = Asn1.Oid.register (Asn1.Oid.of_string_exn s)
  let sha256_with_rsa = o "1.2.840.113549.1.1.11"
  let rsa_encryption = o "1.2.840.113549.1.1.1"
  let mock_signature = o "1.3.6.1.4.1.55555.1.1"
  let mock_key = o "1.3.6.1.4.1.55555.2.1"
end

type keypair =
  | Mock of { spki : spki; mac : Ucrypto.Sha256.hmac_key option }
  | Rsa_keypair of { key : Ucrypto.Rsa.key; spki : spki }

(* The MAC secret is derived from the public key so that relying
   parties can verify; the scheme is a binding check, not a real
   signature (DESIGN.md). *)
let mock_secret public = Ucrypto.Sha256.digest ("mock-bind:" ^ public)

let mock_keypair ?(signer = false) ~seed () =
  (* [signer] keypairs (issuers, CT logs) precompute the HMAC pad
     midstates, amortizing them over every signature they emit.  Leaf
     keypairs never sign, so they skip the secret derivation
     entirely. *)
  let public = Ucrypto.Sha256.digest ("mock-public:" ^ seed) in
  let mac =
    if signer then Some (Ucrypto.Sha256.hmac_init (mock_secret public)) else None
  in
  Mock { spki = { alg = Oids.mock_key; key = public }; mac }

let rsa_keypair key =
  Rsa_keypair { key; spki = { alg = Oids.rsa_encryption; key = Ucrypto.Rsa.public_to_der key.Ucrypto.Rsa.public } }

let keypair_spki = function Mock m -> m.spki | Rsa_keypair r -> r.spki

let algorithm_identifier oid =
  Asn1.Value.Sequence [ Asn1.Value.Oid oid; Asn1.Value.Null ]

let time_value (t, form) =
  match form with
  | Utc -> Asn1.Value.Utc_time (Asn1.Time.to_utctime t)
  | Generalized -> Asn1.Value.Generalized_time (Asn1.Time.to_generalized t)

let default_form (t : Asn1.Time.t) = if t.Asn1.Time.year < 2050 then Utc else Generalized

let make_tbs ?(version = 2) ?(serial = "\x01") ?(extensions = []) ~issuer ~subject
    ~not_before ~not_after ?not_before_form ?not_after_form ~spki ~sig_alg () =
  let nb_form = match not_before_form with Some f -> f | None -> default_form not_before in
  let na_form = match not_after_form with Some f -> f | None -> default_form not_after in
  {
    version;
    serial;
    sig_alg;
    issuer;
    not_before = (not_before, nb_form);
    not_after = (not_after, na_form);
    subject;
    spki;
    extensions;
  }

let spki_value spki =
  Asn1.Value.Sequence [ algorithm_identifier spki.alg; Asn1.Value.Bit_string (0, spki.key) ]

let tbs_value tbs =
  let open Asn1.Value in
  let version_field =
    if tbs.version = 0 then [] else [ Explicit (0, [ integer_of_int tbs.version ]) ]
  in
  let extensions_field =
    if tbs.extensions = [] then []
    else [ Explicit (3, [ Sequence (List.map Extension.to_value tbs.extensions) ]) ]
  in
  Sequence
    (version_field
    @ [
        Integer tbs.serial;
        algorithm_identifier tbs.sig_alg;
        Dn.to_value tbs.issuer;
        Sequence [ time_value tbs.not_before; time_value tbs.not_after ];
        Dn.to_value tbs.subject;
        spki_value tbs.spki;
      ]
    @ extensions_field)

let encode_tbs tbs = Asn1.Value.encode (tbs_value tbs)

let raw_sign keypair tbs_der =
  match keypair with
  | Mock { mac = Some hk; _ } -> Ucrypto.Sha256.hmac_with hk tbs_der
  | Mock m -> Ucrypto.Sha256.hmac ~key:(mock_secret m.spki.key) tbs_der
  | Rsa_keypair r -> Ucrypto.Rsa.sign r.key tbs_der

let sign keypair tbs =
  let tbs_der = encode_tbs tbs in
  let signature = raw_sign keypair tbs_der in
  let outer_sig_alg = tbs.sig_alg in
  let der =
    Asn1.Writer.sequence
      [
        tbs_der;
        Asn1.Value.encode (algorithm_identifier outer_sig_alg);
        Asn1.Value.encode (Asn1.Value.Bit_string (0, signature));
      ]
  in
  { tbs; tbs_der; outer_sig_alg; signature; der }

let parse_time v =
  match v with
  | Asn1.Value.Utc_time s -> (
      match Asn1.Time.of_utctime s with
      | Ok t -> Ok (t, Utc)
      | Error m -> Error ("bad UTCTime: " ^ m))
  | Asn1.Value.Generalized_time s -> (
      match Asn1.Time.of_generalized s with
      | Ok t -> Ok (t, Generalized)
      | Error m -> Error ("bad GeneralizedTime: " ^ m))
  | _ -> Error "validity field must be a time"

let parse_alg = function
  | Asn1.Value.Sequence (Asn1.Value.Oid oid :: _) -> Ok oid
  | _ -> Error "AlgorithmIdentifier must be SEQUENCE { OID, ... }"

let ( >>= ) r f = Result.bind r f

let parse_tbs_fields fields =
  let open Asn1.Value in
  let version, rest =
    match fields with
    | Explicit (0, [ v ]) :: rest -> (
        match int_of_integer v with Some n -> (n, rest) | None -> (2, rest))
    | rest -> (0, rest)
  in
  match rest with
  | Integer serial :: alg :: issuer :: Sequence [ nb; na ] :: subject :: spki :: rest ->
      parse_alg alg >>= fun sig_alg ->
      Dn.of_value issuer >>= fun issuer ->
      parse_time nb >>= fun not_before ->
      parse_time na >>= fun not_after ->
      Dn.of_value subject >>= fun subject ->
      (match spki with
      | Sequence [ key_alg; Bit_string (_, key) ] ->
          parse_alg key_alg >>= fun alg -> Ok { alg; key }
      | _ -> Error "bad SubjectPublicKeyInfo")
      >>= fun spki ->
      let extensions =
        List.find_map
          (function Explicit (3, [ Sequence exts ]) -> Some exts | _ -> None)
          rest
      in
      (match extensions with
      | None -> Ok []
      | Some exts ->
          List.fold_left
            (fun acc e ->
              acc >>= fun l ->
              Extension.of_value e >>= fun e -> Ok (e :: l))
            (Ok []) exts
          |> Result.map List.rev)
      >>= fun extensions ->
      Ok { version; serial; sig_alg; issuer; not_before; not_after; subject; spki; extensions }
  | _ -> Error "TBSCertificate: unexpected field layout"

(* Layout errors (right DER, wrong certificate shape) carry no offset;
   DER-level errors keep the reader's offset for triage. *)
let layout_err detail = Faults.Error.Decode_error { offset = None; detail }

let der_err (e : Asn1.Value.error) =
  Faults.Error.Decode_error { offset = Some e.offset; detail = e.reason }

let parse ?(config = Asn1.Value.strict) der =
  match Asn1.Value.decode ~config der with
  | Error e -> Error (der_err e)
  | Ok (Asn1.Value.Sequence [ tbs_v; alg_v; Asn1.Value.Bit_string (_, signature) ]) -> (
      Result.map_error layout_err
        ( parse_alg alg_v >>= fun outer_sig_alg ->
          (match tbs_v with
          | Asn1.Value.Sequence fields -> parse_tbs_fields fields
          | _ -> Error "TBSCertificate must be a SEQUENCE")
          >>= fun tbs -> Ok (outer_sig_alg, tbs) )
      >>= fun (outer_sig_alg, tbs) ->
      (* Recover the exact TBS byte span from the outer encoding: the
         outer header length tells us where the first child starts. *)
      let child_offset =
        let l0 = Char.code der.[1] in
        if l0 < 0x80 then 2 else 2 + (l0 land 0x7F)
      in
      match Asn1.Value.decode_prefix ~config der child_offset with
      | Ok (_, stop) ->
          let tbs_der = String.sub der child_offset (stop - child_offset) in
          Ok { tbs; tbs_der; outer_sig_alg; signature; der }
      | Error e -> Error (der_err e))
  | Ok _ -> Error (layout_err "Certificate must be SEQUENCE { tbs, alg, BIT STRING }")

let of_pem pem =
  match Pem.decode_certificate pem with
  | Error m -> Error (layout_err m)
  | Ok der -> parse der
let to_pem cert = Pem.encode_certificate cert.der

let raw_signature = raw_sign

(* Verification re-derives the issuer MAC key from the public key on
   every call; a corpus pass verifies thousands of certificates against
   the same handful of issuers, so the derived midstates are cached.
   The cache is per-domain (Domain.DLS) — no synchronization, safe
   under [Par]. *)
let verify_mac_cache : (string, Ucrypto.Sha256.hmac_key) Hashtbl.t Domain.DLS.key
    =
  Domain.DLS.new_key (fun () -> Hashtbl.create 8)

let verify_mac public =
  let tbl = Domain.DLS.get verify_mac_cache in
  match Hashtbl.find_opt tbl public with
  | Some hk -> hk
  | None ->
      let hk = Ucrypto.Sha256.hmac_init (mock_secret public) in
      if Hashtbl.length tbl < 1024 then Hashtbl.add tbl public hk;
      hk

let verify_raw ~issuer_spki ~message ~signature =
  if Asn1.Oid.equal issuer_spki.alg Oids.mock_key then
    (* The mock scheme derives the MAC secret from the public key; this
       is NOT unforgeable and exists purely to bind signed bytes to an
       issuer identity in simulations (see DESIGN.md). *)
    String.equal signature
      (Ucrypto.Sha256.hmac_with (verify_mac issuer_spki.key) message)
  else if Asn1.Oid.equal issuer_spki.alg Oids.rsa_encryption then
    match Asn1.Value.decode issuer_spki.key with
    | Ok (Asn1.Value.Sequence [ Asn1.Value.Integer n; Asn1.Value.Integer e ]) ->
        let pub =
          { Ucrypto.Rsa.n = Ucrypto.Bignum.of_bytes_be n;
            e = Ucrypto.Bignum.of_bytes_be e }
        in
        Ucrypto.Rsa.verify pub ~msg:message ~signature
    | Ok _ | Error _ -> false
  else false

let verify ~issuer_spki cert =
  verify_raw ~issuer_spki ~message:cert.tbs_der ~signature:cert.signature

let self_spki cert = cert.tbs.spki

let validity_days cert =
  Asn1.Time.days_between (fst cert.tbs.not_before) (fst cert.tbs.not_after)

let is_valid_at cert t =
  Asn1.Time.(fst cert.tbs.not_before <= t) && Asn1.Time.(t <= fst cert.tbs.not_after)

let is_precertificate cert =
  Extension.find cert.tbs.extensions Extension.Oids.ct_poison <> None

let subject_cn cert =
  match Dn.get_text cert.tbs.subject Attr.Common_name with
  | [] -> None
  | cn :: _ -> Some cn

let san_dns_names cert =
  match Extension.find cert.tbs.extensions Extension.Oids.subject_alt_name with
  | None -> []
  | Some e -> (
      match Extension.parse_general_names e.Extension.value with
      | Error _ -> []
      | Ok gns ->
          List.filter_map
            (function General_name.Dns_name s -> Some s | _ -> None)
            gns)
