(** X.509 v3 certificates: construction, signing, DER encoding and
    parsing, and signature verification.

    Two signature schemes are supported (see DESIGN.md): real RSA
    (PKCS#1 v1.5 / SHA-256, from scratch in [ucrypto]) used by the
    chain-verification experiments, and a deterministic keyed-hash mock
    scheme used for bulk corpus generation where per-certificate RSA
    would dominate runtime.  Both bind the signature to the exact TBS
    bytes, so tampering is detected either way. *)

type time_form = Utc | Generalized

type spki = { alg : Asn1.Oid.t; key : string }
(** SubjectPublicKeyInfo: algorithm OID and raw subjectPublicKey
    payload. *)

type tbs = {
  version : int;  (** 0 = v1, 2 = v3 *)
  serial : string;  (** INTEGER content octets *)
  sig_alg : Asn1.Oid.t;
  issuer : Dn.t;
  not_before : Asn1.Time.t * time_form;
  not_after : Asn1.Time.t * time_form;
  subject : Dn.t;
  spki : spki;
  extensions : Extension.t list;
}

type t = {
  tbs : tbs;
  tbs_der : string;  (** exact bytes covered by the signature *)
  outer_sig_alg : Asn1.Oid.t;
  signature : string;
  der : string;  (** the full certificate encoding *)
}

module Oids : sig
  val sha256_with_rsa : Asn1.Oid.t
  val rsa_encryption : Asn1.Oid.t
  val mock_signature : Asn1.Oid.t
  val mock_key : Asn1.Oid.t
end

(** {1 Keys and signing} *)

type keypair
(** An issuing key: public SPKI plus signing capability. *)

val mock_keypair : ?signer:bool -> seed:string -> unit -> keypair
(** [mock_keypair ~seed] derives a deterministic keyed-hash signer.
    [~signer:true] additionally precomputes the HMAC pad midstates —
    worthwhile for keys that sign many messages (issuers, CT logs);
    signatures are byte-identical either way. *)

val rsa_keypair : Ucrypto.Rsa.key -> keypair
val keypair_spki : keypair -> spki

val make_tbs :
  ?version:int ->
  ?serial:string ->
  ?extensions:Extension.t list ->
  issuer:Dn.t ->
  subject:Dn.t ->
  not_before:Asn1.Time.t ->
  not_after:Asn1.Time.t ->
  ?not_before_form:time_form ->
  ?not_after_form:time_form ->
  spki:spki ->
  sig_alg:Asn1.Oid.t ->
  unit ->
  tbs
(** [make_tbs] assembles a TBSCertificate (defaults: v3, serial 1,
    UTCTime before 2050). *)

val sign : keypair -> tbs -> t
(** [sign issuer_key tbs] encodes and signs. *)

val encode_tbs : tbs -> string

(** {1 Parsing and verification} *)

val parse : ?config:Asn1.Value.config -> string -> (t, Faults.Error.t) result
(** [parse der] decodes a certificate.  The TBS byte span is taken from
    the input, so verification works even when re-encoding would
    differ.  Failures are typed [Faults.Error.Decode_error]s: DER-level
    errors carry the reader's byte offset, certificate-layout errors
    carry [None]. *)

val of_pem : string -> (t, Faults.Error.t) result
val to_pem : t -> string

val verify : issuer_spki:spki -> t -> bool
(** [verify ~issuer_spki cert] checks the signature over [tbs_der]. *)

val raw_signature : keypair -> string -> string
(** [raw_signature key bytes] signs arbitrary bytes with the keypair's
    scheme — used by the CRL layer. *)

val verify_raw : issuer_spki:spki -> message:string -> signature:string -> bool
(** Signature check over arbitrary bytes (certificates, CRLs). *)

val self_spki : t -> spki
(** [self_spki cert] is the certificate's own SPKI (for verifying its
    children). *)

val validity_days : t -> int
(** [validity_days cert] is the notBefore→notAfter span in days. *)

val is_valid_at : t -> Asn1.Time.t -> bool
val is_precertificate : t -> bool
(** CT poison extension present. *)

val subject_cn : t -> string option
(** First Subject commonName, decoded leniently. *)

val san_dns_names : t -> string list
(** Raw dNSName payloads from the SAN extension ([] when absent or
    unparsable). *)
