type t = { oid : Asn1.Oid.t; critical : bool; value : string }

module Oids = struct
  let o s = Asn1.Oid.register (Asn1.Oid.of_string_exn s)
  let subject_alt_name = o "2.5.29.17"
  let issuer_alt_name = o "2.5.29.18"
  let crl_distribution_points = o "2.5.29.31"
  let certificate_policies = o "2.5.29.32"
  let basic_constraints = o "2.5.29.19"
  let key_usage = o "2.5.29.15"
  let ext_key_usage = o "2.5.29.37"
  let authority_info_access = o "1.3.6.1.5.5.7.1.1"
  let subject_info_access = o "1.3.6.1.5.5.7.1.11"
  let name_constraints = o "2.5.29.30"
  let ct_poison = o "1.3.6.1.4.1.11129.2.4.3"
  let sct_list = o "1.3.6.1.4.1.11129.2.4.2"
  let ocsp = o "1.3.6.1.5.5.7.48.1"
  let ca_issuers = o "1.3.6.1.5.5.7.48.2"
end

let find exts oid = List.find_opt (fun e -> Asn1.Oid.equal e.oid oid) exts

let collect_results f items =
  List.fold_left
    (fun acc item ->
      match acc with
      | Error _ as e -> e
      | Ok l -> ( match f item with Ok v -> Ok (v :: l) | Error _ as e -> e))
    (Ok []) items
  |> Result.map List.rev


let general_names_value gns =
  Asn1.Value.Sequence (List.map General_name.to_value gns)

let subject_alt_name ?(critical = false) gns =
  { oid = Oids.subject_alt_name; critical;
    value = Asn1.Value.encode (general_names_value gns) }

let issuer_alt_name gns =
  { oid = Oids.issuer_alt_name; critical = false;
    value = Asn1.Value.encode (general_names_value gns) }

let crl_distribution_points gns =
  (* DistributionPoint ::= SEQUENCE { distributionPoint [0] EXPLICIT
     DistributionPointName OPTIONAL, ... }; DistributionPointName ::=
     CHOICE { fullName [0] IMPLICIT GeneralNames, ... }.  The inner [0]
     is constructed because GeneralNames is a SEQUENCE. *)
  let point gn =
    Asn1.Value.Sequence
      [ Asn1.Value.Explicit (0, [ Asn1.Value.Explicit (0, [ General_name.to_value gn ]) ]) ]
  in
  { oid = Oids.crl_distribution_points; critical = false;
    value = Asn1.Value.encode (Asn1.Value.Sequence (List.map point gns)) }

let info_access oid entries =
  let desc (meth, gn) =
    Asn1.Value.Sequence [ Asn1.Value.Oid meth; General_name.to_value gn ]
  in
  { oid; critical = false;
    value = Asn1.Value.encode (Asn1.Value.Sequence (List.map desc entries)) }

let authority_info_access = info_access Oids.authority_info_access
let subject_info_access = info_access Oids.subject_info_access

type user_notice = { explicit_text : Asn1.Value.t option }
type policy = { policy_oid : Asn1.Oid.t; notice : user_notice option }

let unotice_oid = Asn1.Oid.register (Asn1.Oid.of_string_exn "1.3.6.1.5.5.7.2.2")

let certificate_policies policies =
  let policy_value p =
    let quals =
      match p.notice with
      | None -> []
      | Some n ->
          let notice_fields =
            match n.explicit_text with None -> [] | Some text -> [ text ]
          in
          [ Asn1.Value.Sequence
              [ Asn1.Value.Oid unotice_oid; Asn1.Value.Sequence notice_fields ] ]
    in
    let quals_field =
      if quals = [] then [] else [ Asn1.Value.Sequence quals ]
    in
    Asn1.Value.Sequence (Asn1.Value.Oid p.policy_oid :: quals_field)
  in
  { oid = Oids.certificate_policies; critical = false;
    value = Asn1.Value.encode (Asn1.Value.Sequence (List.map policy_value policies)) }

let basic_constraints ?(ca = false) ?path_len () =
  let fields =
    (if ca then [ Asn1.Value.Boolean true ] else [])
    @ match path_len with None -> [] | Some n -> [ Asn1.Value.integer_of_int n ]
  in
  { oid = Oids.basic_constraints; critical = true;
    value = Asn1.Value.encode (Asn1.Value.Sequence fields) }

let key_usage bits =
  (* KeyUsage bit 0 (digitalSignature) is the most significant bit of
     the first octet in the BIT STRING. *)
  let byte = ref 0 in
  for i = 0 to 7 do
    if bits lsr i land 1 = 1 then byte := !byte lor (0x80 lsr i)
  done;
  { oid = Oids.key_usage; critical = true;
    value = Asn1.Value.encode (Asn1.Value.Bit_string (0, String.make 1 (Char.chr !byte))) }

let name_constraints ?(permitted = []) ?(excluded = []) () =
  let subtrees gns =
    Asn1.Value.Sequence
      (List.map (fun gn -> Asn1.Value.Sequence [ General_name.to_value gn ]) gns)
  in
  let fields =
    (if permitted = [] then []
     else [ Asn1.Value.Explicit (0, [ subtrees permitted ]) ])
    @
    if excluded = [] then [] else [ Asn1.Value.Explicit (1, [ subtrees excluded ]) ]
  in
  { oid = Oids.name_constraints; critical = true;
    value = Asn1.Value.encode (Asn1.Value.Sequence fields) }

let parse_name_constraints der =
  match Asn1.Value.decode der with
  | Error e -> Error (Format.asprintf "%a" Asn1.Value.pp_error e)
  | Ok (Asn1.Value.Sequence fields) ->
      let open Asn1.Value in
      let subtree_bases = function
        | Sequence trees ->
            collect_results
              (function
                | Sequence (gn :: _) -> General_name.of_value gn
                | _ -> Error "GeneralSubtree must be a SEQUENCE")
              trees
        | _ -> Error "subtrees must be a SEQUENCE"
      in
      let find tag =
        List.find_map
          (function Explicit (t, [ sub ]) when t = tag -> Some sub | _ -> None)
          fields
      in
      let get tag =
        match find tag with None -> Ok [] | Some sub -> subtree_bases sub
      in
      Result.bind (get 0) (fun permitted ->
          Result.bind (get 1) (fun excluded -> Ok (permitted, excluded)))
  | Ok _ -> Error "NameConstraints must be a SEQUENCE"

let ct_poison =
  { oid = Oids.ct_poison; critical = true; value = Asn1.Value.encode Asn1.Value.Null }

let sct_list payload =
  { oid = Oids.sct_list; critical = false;
    value = Asn1.Value.encode (Asn1.Value.Octet_string payload) }

let parse_general_names der =
  match Asn1.Value.decode der with
  | Error e -> Error (Format.asprintf "%a" Asn1.Value.pp_error e)
  | Ok (Asn1.Value.Sequence gns) -> collect_results General_name.of_value gns
  | Ok _ -> Error "GeneralNames must be a SEQUENCE"

let parse_crl_distribution_points der =
  match Asn1.Value.decode der with
  | Error e -> Error (Format.asprintf "%a" Asn1.Value.pp_error e)
  | Ok (Asn1.Value.Sequence points) ->
      let open Asn1.Value in
      let point_names = function
        | Sequence (Explicit (0, [ Explicit (0, gns) ]) :: _) ->
            collect_results General_name.of_value gns
        | Sequence _ -> Ok []
        | _ -> Error "DistributionPoint must be a SEQUENCE"
      in
      collect_results point_names points |> Result.map List.concat
  | Ok _ -> Error "CRLDistributionPoints must be a SEQUENCE"

let parse_info_access der =
  match Asn1.Value.decode der with
  | Error e -> Error (Format.asprintf "%a" Asn1.Value.pp_error e)
  | Ok (Asn1.Value.Sequence descs) ->
      let open Asn1.Value in
      let desc = function
        | Sequence [ Oid meth; gn ] ->
            Result.map (fun g -> (meth, g)) (General_name.of_value gn)
        | _ -> Error "AccessDescription must be SEQUENCE { OID, GeneralName }"
      in
      collect_results desc descs
  | Ok _ -> Error "AuthorityInfoAccess must be a SEQUENCE"

let parse_certificate_policies der =
  match Asn1.Value.decode der with
  | Error e -> Error (Format.asprintf "%a" Asn1.Value.pp_error e)
  | Ok (Asn1.Value.Sequence policies) ->
      let open Asn1.Value in
      let notice_of = function
        | Sequence [ Oid q; Sequence fields ] when Asn1.Oid.equal q unotice_oid ->
            let explicit_text =
              List.find_opt (function Str _ -> true | _ -> false) fields
            in
            Some { explicit_text }
        | _ -> None
      in
      let policy_of = function
        | Sequence (Oid policy_oid :: rest) ->
            let notice =
              match rest with
              | [ Sequence quals ] -> List.find_map notice_of quals
              | _ -> None
            in
            Ok { policy_oid; notice }
        | _ -> Error "PolicyInformation must start with an OID"
      in
      collect_results policy_of policies
  | Ok _ -> Error "CertificatePolicies must be a SEQUENCE"

let to_value e =
  let critical_field = if e.critical then [ Asn1.Value.Boolean true ] else [] in
  Asn1.Value.Sequence
    ((Asn1.Value.Oid e.oid :: critical_field) @ [ Asn1.Value.Octet_string e.value ])

let of_value = function
  | Asn1.Value.Sequence [ Asn1.Value.Oid oid; Asn1.Value.Octet_string value ] ->
      Ok { oid; critical = false; value }
  | Asn1.Value.Sequence
      [ Asn1.Value.Oid oid; Asn1.Value.Boolean critical; Asn1.Value.Octet_string value ] ->
      Ok { oid; critical; value }
  | _ -> Error "Extension must be SEQUENCE { OID, [critical,] OCTET STRING }"
