type t =
  | Common_name
  | Surname
  | Serial_number
  | Country_name
  | Locality_name
  | State_or_province_name
  | Street_address
  | Organization_name
  | Organizational_unit_name
  | Title
  | Given_name
  | Business_category
  | Postal_code
  | Domain_component
  | Email_address
  | Jurisdiction_locality
  | Jurisdiction_state
  | Jurisdiction_country
  | Unknown of Asn1.Oid.t

let o s = Asn1.Oid.register (Asn1.Oid.of_string_exn s)

let table =
  [
    (Common_name, o "2.5.4.3", "commonName", Some "CN", Some 64);
    (Surname, o "2.5.4.4", "surname", Some "SN", Some 40);
    (Serial_number, o "2.5.4.5", "serialNumber", None, Some 64);
    (Country_name, o "2.5.4.6", "countryName", Some "C", Some 2);
    (Locality_name, o "2.5.4.7", "localityName", Some "L", Some 128);
    (State_or_province_name, o "2.5.4.8", "stateOrProvinceName", Some "ST", Some 128);
    (Street_address, o "2.5.4.9", "streetAddress", Some "STREET", Some 128);
    (Organization_name, o "2.5.4.10", "organizationName", Some "O", Some 64);
    (Organizational_unit_name, o "2.5.4.11", "organizationalUnitName", Some "OU", Some 64);
    (Title, o "2.5.4.12", "title", None, Some 64);
    (Given_name, o "2.5.4.42", "givenName", None, Some 16);
    (Business_category, o "2.5.4.15", "businessCategory", None, Some 128);
    (Postal_code, o "2.5.4.17", "postalCode", None, Some 40);
    (Domain_component, o "0.9.2342.19200300.100.1.25", "domainComponent", Some "DC", None);
    (Email_address, o "1.2.840.113549.1.9.1", "emailAddress", Some "E", Some 255);
    (Jurisdiction_locality, o "1.3.6.1.4.1.311.60.2.1.1", "jurisdictionLocalityName", None, Some 128);
    (Jurisdiction_state, o "1.3.6.1.4.1.311.60.2.1.2", "jurisdictionStateOrProvinceName", None, Some 128);
    (Jurisdiction_country, o "1.3.6.1.4.1.311.60.2.1.3", "jurisdictionCountryName", None, Some 2);
  ]

let row a = List.find_opt (fun (t, _, _, _, _) -> t = a) table

let oid = function
  | Unknown oid -> oid
  | a -> ( match row a with Some (_, oid, _, _, _) -> oid | None -> assert false)

let of_oid_tbl : (Asn1.Oid.t, t) Hashtbl.t =
  let h = Hashtbl.create 32 in
  List.iter (fun (a, o, _, _, _) -> Hashtbl.replace h o a) table;
  h

let of_oid oid =
  match Hashtbl.find_opt of_oid_tbl oid with
  | Some a -> a
  | None -> Unknown oid

let name = function
  | Unknown oid -> Asn1.Oid.to_string oid
  | a -> ( match row a with Some (_, _, n, _, _) -> n | None -> assert false)

let short_name = function
  | Unknown _ -> None
  | a -> ( match row a with Some (_, _, _, s, _) -> s | None -> None)

let upper_bound = function
  | Unknown _ -> None
  | a -> ( match row a with Some (_, _, _, _, ub) -> ub | None -> None)

let is_directory_string = function
  | Common_name | Surname | Locality_name | State_or_province_name | Street_address
  | Organization_name | Organizational_unit_name | Title | Given_name
  | Business_category | Postal_code | Jurisdiction_locality | Jurisdiction_state ->
      true
  | Serial_number | Country_name | Domain_component | Email_address
  | Jurisdiction_country | Unknown _ ->
      false

let permitted_string_types a =
  let open Asn1.Str_type in
  match a with
  | Country_name | Jurisdiction_country | Serial_number -> [ Printable_string ]
  | Domain_component | Email_address -> [ Ia5_string ]
  | Unknown _ -> all
  | _ -> [ Printable_string; Utf8_string ]

let all_known = List.map (fun (a, _, _, _, _) -> a) table
