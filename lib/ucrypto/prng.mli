(** Deterministic pseudo-random generator (splitmix64).

    Every generator in the repository (corpus, test Unicerts, property
    tests) draws from a seeded [Prng.t] so experiments are exactly
    reproducible. *)

type t

val create : int -> t
(** [create seed] builds an independent stream. *)

val of_pair : int -> int -> t
(** [of_pair seed index] builds the stream owned by position [index] of
    run [seed]: a pure function of the pair, statistically independent
    across indices.  This is what makes corpus generation shardable —
    any index range regenerates exactly the entries a full sequential
    pass would produce. *)

val split : t -> t
(** [split g] derives a statistically independent child stream. *)

val bits64 : t -> int64
(** [bits64 g] is the next raw 64-bit output. *)

val int : t -> int -> int
(** [int g bound] is uniform in [0 .. bound-1]; [bound] must be
    positive. *)

val float : t -> float
(** [float g] is uniform in [0.0, 1.0). *)

val bool : t -> bool

val pick : t -> 'a array -> 'a
(** [pick g arr] is a uniformly chosen element; [arr] must be
    non-empty. *)

val pick_list : t -> 'a list -> 'a

val weighted : t -> ('a * float) list -> 'a
(** [weighted g choices] samples proportionally to the weights (which
    need not sum to 1). *)

val bytes : t -> int -> string
(** [bytes g n] is [n] pseudo-random bytes. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
