type t = { mutable state : int64 }

let gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix (Int64.of_int seed) }

(* Independent stream per (seed, index) pair: the seed is mixed first,
   then pushed [index] steps along the splitmix gamma sequence and
   mixed again, so neighbouring indices land on unrelated points of the
   state space.  Corpus sharding depends on this being a pure function
   of the pair — stream i never depends on how many draws stream i-1
   consumed. *)
let of_pair seed index =
  let base = mix (Int64.of_int seed) in
  { state = mix (Int64.add base (Int64.mul gamma (Int64.of_int index))) }

let bits64 g =
  g.state <- Int64.add g.state gamma;
  mix g.state

let split g =
  let seed = bits64 g in
  { state = mix seed }

let int g bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  let r = Int64.to_int (Int64.shift_right_logical (bits64 g) 2) in
  r mod bound

let float g =
  let r = Int64.to_int (Int64.shift_right_logical (bits64 g) 11) in
  float_of_int r /. 9007199254740992.0 (* 2^53 *)

let bool g = Int64.logand (bits64 g) 1L = 1L
let pick g arr = arr.(int g (Array.length arr))
let pick_list g l = List.nth l (int g (List.length l))

let weighted g choices =
  let total = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 choices in
  let target = float g *. total in
  let rec go acc = function
    | [] -> invalid_arg "Prng.weighted: empty choices"
    | [ (x, _) ] -> x
    | (x, w) :: rest -> if acc +. w > target then x else go (acc +. w) rest
  in
  go 0.0 choices

let bytes g n = String.init n (fun _ -> Char.chr (int g 256))

let shuffle g arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
