(* FIPS 180-4 SHA-256 over native ints (words live in the low 32 bits).
   The compression kernel avoids bounds checks and redundant masking:
   sums of a few 32-bit words fit a 63-bit int, so only values that
   feed a shift/rotate are re-masked. *)

let k =
  [|
    0x428a2f98; 0x71374491; 0xb5c0fbcf; 0xe9b5dba5; 0x3956c25b; 0x59f111f1;
    0x923f82a4; 0xab1c5ed5; 0xd807aa98; 0x12835b01; 0x243185be; 0x550c7dc3;
    0x72be5d74; 0x80deb1fe; 0x9bdc06a7; 0xc19bf174; 0xe49b69c1; 0xefbe4786;
    0x0fc19dc6; 0x240ca1cc; 0x2de92c6f; 0x4a7484aa; 0x5cb0a9dc; 0x76f988da;
    0x983e5152; 0xa831c66d; 0xb00327c8; 0xbf597fc7; 0xc6e00bf3; 0xd5a79147;
    0x06ca6351; 0x14292967; 0x27b70a85; 0x2e1b2138; 0x4d2c6dfc; 0x53380d13;
    0x650a7354; 0x766a0abb; 0x81c2c92e; 0x92722c85; 0xa2bfe8a1; 0xa81a664b;
    0xc24b8b70; 0xc76c51a3; 0xd192e819; 0xd6990624; 0xf40e3585; 0x106aa070;
    0x19a4c116; 0x1e376c08; 0x2748774c; 0x34b0bcb5; 0x391c0cb3; 0x4ed8aa4a;
    0x5b9cca4f; 0x682e6ff3; 0x748f82ee; 0x78a5636f; 0x84c87814; 0x8cc70208;
    0x90befffa; 0xa4506ceb; 0xbef9a3f7; 0xc67178f2;
  |]

let mask = 0xFFFFFFFF
let[@inline] rotr x n = ((x lsr n) lor (x lsl (32 - n))) land mask

let iv = [| 0x6a09e667; 0xbb67ae85; 0x3c6ef372; 0xa54ff53a;
            0x510e527f; 0x9b05688c; 0x1f83d9ab; 0x5be0cd19 |]

(* Message-schedule extension + 64 rounds over a preloaded 16-word
   prefix of [w].  [h] is updated in place. *)
let rounds h w =
  for t = 16 to 63 do
    let w15 = Array.unsafe_get w (t - 15) and w2 = Array.unsafe_get w (t - 2) in
    let s0 = rotr w15 7 lxor rotr w15 18 lxor (w15 lsr 3) in
    let s1 = rotr w2 17 lxor rotr w2 19 lxor (w2 lsr 10) in
    Array.unsafe_set w t
      ((Array.unsafe_get w (t - 16) + s0 + Array.unsafe_get w (t - 7) + s1)
       land mask)
  done;
  (* The working variables travel as unboxed int arguments — no
     per-round stores — and rotate by argument position. *)
  let rec loop t a b c d e f g hh =
    if t = 64 then begin
      h.(0) <- (h.(0) + a) land mask;
      h.(1) <- (h.(1) + b) land mask;
      h.(2) <- (h.(2) + c) land mask;
      h.(3) <- (h.(3) + d) land mask;
      h.(4) <- (h.(4) + e) land mask;
      h.(5) <- (h.(5) + f) land mask;
      h.(6) <- (h.(6) + g) land mask;
      h.(7) <- (h.(7) + hh) land mask
    end
    else
      let s1 = rotr e 6 lxor rotr e 11 lxor rotr e 25 in
      let ch = (e land f) lxor (lnot e land g) in
      let temp1 = hh + s1 + ch + Array.unsafe_get k t + Array.unsafe_get w t in
      let s0 = rotr a 2 lxor rotr a 13 lxor rotr a 22 in
      let maj = (a land b) lxor (a land c) lxor (b land c) in
      loop (t + 1)
        ((temp1 + s0 + maj) land mask)
        a b c
        ((d + temp1) land mask)
        e f g
  in
  loop 0 h.(0) h.(1) h.(2) h.(3) h.(4) h.(5) h.(6) h.(7)

let[@inline] load_string w s base =
  for t = 0 to 15 do
    let o = base + (4 * t) in
    Array.unsafe_set w t
      ((Char.code (String.unsafe_get s o) lsl 24)
      lor (Char.code (String.unsafe_get s (o + 1)) lsl 16)
      lor (Char.code (String.unsafe_get s (o + 2)) lsl 8)
      lor Char.code (String.unsafe_get s (o + 3)))
  done

let[@inline] load_bytes w b base =
  for t = 0 to 15 do
    let o = base + (4 * t) in
    Array.unsafe_set w t
      ((Char.code (Bytes.unsafe_get b o) lsl 24)
      lor (Char.code (Bytes.unsafe_get b (o + 1)) lsl 16)
      lor (Char.code (Bytes.unsafe_get b (o + 2)) lsl 8)
      lor Char.code (Bytes.unsafe_get b (o + 3)))
  done

type ctx = {
  h : int array;
  buf : Bytes.t;  (* pending partial block *)
  w : int array;  (* scratch schedule *)
  mutable n : int;      (* bytes pending in [buf] *)
  mutable total : int;  (* total message bytes absorbed *)
}

let init () =
  { h = Array.copy iv; buf = Bytes.create 64; w = Array.make 64 0; n = 0;
    total = 0 }

let update ctx s =
  let len = String.length s in
  ctx.total <- ctx.total + len;
  let pos = ref 0 in
  if ctx.n > 0 then begin
    let take = min (64 - ctx.n) len in
    Bytes.blit_string s 0 ctx.buf ctx.n take;
    ctx.n <- ctx.n + take;
    pos := take;
    if ctx.n = 64 then begin
      load_bytes ctx.w ctx.buf 0;
      rounds ctx.h ctx.w;
      ctx.n <- 0
    end
  end;
  while len - !pos >= 64 do
    load_string ctx.w s !pos;
    rounds ctx.h ctx.w;
    pos := !pos + 64
  done;
  if !pos < len then begin
    Bytes.blit_string s !pos ctx.buf ctx.n (len - !pos);
    ctx.n <- ctx.n + (len - !pos)
  end

let final ctx =
  let bits = ctx.total * 8 in
  Bytes.set ctx.buf ctx.n '\x80';
  let n = ctx.n + 1 in
  if n > 56 then begin
    Bytes.fill ctx.buf n (64 - n) '\000';
    load_bytes ctx.w ctx.buf 0;
    rounds ctx.h ctx.w;
    Bytes.fill ctx.buf 0 56 '\000'
  end
  else Bytes.fill ctx.buf n (56 - n) '\000';
  for i = 0 to 7 do
    Bytes.set ctx.buf (63 - i) (Char.chr ((bits lsr (8 * i)) land 0xFF))
  done;
  load_bytes ctx.w ctx.buf 0;
  rounds ctx.h ctx.w;
  let h = ctx.h in
  String.init 32 (fun i ->
      Char.chr ((h.(i / 4) lsr (8 * (3 - (i mod 4)))) land 0xFF))

let digest msg =
  let ctx = init () in
  update ctx msg;
  final ctx

let hex msg =
  let d = digest msg in
  String.concat ""
    (List.init 32 (fun i -> Printf.sprintf "%02x" (Char.code d.[i])))

(* HMAC with precomputable key midstates: the inner/outer pad blocks
   depend only on the key, so a reused key (every issuer signature)
   skips two of the compression calls per MAC. *)
type hmac_key = { inner : int array; outer : int array }

let hmac_init key =
  let key = if String.length key > 64 then digest key else key in
  let klen = String.length key in
  let block pad =
    Bytes.init 64 (fun i ->
        Char.chr ((if i < klen then Char.code key.[i] else 0) lxor pad))
  in
  let w = Array.make 64 0 in
  let state pad =
    let h = Array.copy iv in
    load_bytes w (block pad) 0;
    rounds h w;
    h
  in
  { inner = state 0x36; outer = state 0x5C }

let hmac_with hk msg =
  let ctx =
    { h = Array.copy hk.inner; buf = Bytes.create 64; w = Array.make 64 0;
      n = 0; total = 64 }
  in
  update ctx msg;
  let inner_digest = final ctx in
  let octx =
    { h = Array.copy hk.outer; buf = Bytes.create 64; w = ctx.w; n = 0;
      total = 64 }
  in
  update octx inner_digest;
  final octx

let hmac ~key msg = hmac_with (hmac_init key) msg
