(** SHA-256 (FIPS 180-4), implemented from scratch.

    Used for Merkle tree hashing in the CT log substrate and for the
    RSA signature digests. *)

val digest : string -> string
(** [digest msg] is the 32-byte binary digest. *)

val hex : string -> string
(** [hex msg] is the lowercase hex digest. *)

val hmac : key:string -> string -> string
(** [hmac ~key msg] is HMAC-SHA-256 (RFC 2104), used by the
    deterministic mock signature scheme of the corpus generator. *)

(** {2 Incremental interface} *)

type ctx
(** Streaming digest state. *)

val init : unit -> ctx
val update : ctx -> string -> unit

val final : ctx -> string
(** [final ctx] pads, finishes, and returns the 32-byte digest.
    [ctx] must not be used afterwards. *)

(** {2 Keyed MAC with precomputed midstates} *)

type hmac_key
(** A key with its inner/outer pad compression states precomputed —
    reusing one (as every issuer signing key does) saves two
    compression calls per MAC. *)

val hmac_init : string -> hmac_key

val hmac_with : hmac_key -> string -> string
(** [hmac_with hk msg] equals [hmac ~key msg] for the [hk] derived from
    [key], byte for byte. *)
