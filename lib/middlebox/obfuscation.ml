type strategy =
  | Case_conversion
  | Abbreviation_variation
  | Nonprintable_addition
  | Whitespace_substitution
  | Resembling_substitution
  | Illegal_replacement

let strategies =
  [ Case_conversion; Abbreviation_variation; Nonprintable_addition;
    Whitespace_substitution; Resembling_substitution; Illegal_replacement ]

let strategy_name = function
  | Case_conversion -> "Character case conversion"
  | Abbreviation_variation -> "Abbreviation variations"
  | Nonprintable_addition -> "Addition of non-printable characters"
  | Whitespace_substitution -> "Use of different whitespace characters"
  | Resembling_substitution -> "Substitution of resembling characters"
  | Illegal_replacement -> "Replacement of illegal characters"

(* Table 3 variant pairs. *)
let examples = function
  | Case_conversion ->
      [ ("Samco Autotechnik GmbH", "SAMCO Autotechnik GmbH");
        ("NOWOCZESNASTODO\xC5\x81A.PL SP. Z O.O.",
         "nowoczesnaSTODO\xC5\x81A.pl sp. z o.o.") ]
  | Abbreviation_variation ->
      [ ("SKAT ELEKTRONIKS, OOO", "SKAT Elektroniks Ltd.");
        ("RWE Energie, s.r.o.", "RWE Energie, a.s.") ]
  | Nonprintable_addition ->
      [ ("Peddy Shield", "PEDDY\xC2\xA0SHIELD\xC2\xA0") ]
  | Whitespace_substitution ->
      [ ("\xE6\xA0\xAA\xE5\xBC\x8F\xE4\xBC\x9A\xE7\xA4\xBE \xE4\xB8\xAD\xE5\x9B\xBD\xE9\x8A\x80\xE8\xA1\x8C",
         "\xE6\xA0\xAA\xE5\xBC\x8F\xE4\xBC\x9A\xE7\xA4\xBE\xE3\x80\x80\xE4\xB8\xAD\xE5\x9B\xBD\xE9\x8A\x80\xE8\xA1\x8C");
        ("EDP -\x2D Energias de Portugal, S.A",
         "EDP -\xE2\x80\x93 Energias de Portugal, SA") ]
  | Resembling_substitution ->
      [ ("Vegas.XXX\xC2\xAE\xE2\x84\xA2 (VegasLLC)", "Vegas.XXX\xE2\x84\xA2\xC2\xAE (VegasLLC)");
        ("crossmedia:team GmbH", "crossmedia Team GmbH") ]
  | Illegal_replacement ->
      [ ("St\xC3\xB6ri AG", "St\xEF\xBF\xBDri AG") ]

let apply g strategy value =
  let cps = Unicode.Codec.cps_of_utf8 value in
  match strategy with
  | Case_conversion ->
      let flip cp =
        if Unicode.Props.is_ascii_lower cp then cp - 32
        else if Unicode.Props.is_ascii_upper cp && Ucrypto.Prng.bool g then cp + 32
        else cp
      in
      Unicode.Codec.utf8_of_cps (Array.map flip cps)
  | Abbreviation_variation ->
      let suffixes =
        [ (", s.r.o.", ", a.s."); (" GmbH", " AG"); (" Ltd.", ", OOO");
          (" Inc", " LLC"); (", S.A", ", SA") ]
      in
      let applied =
        List.find_map
          (fun (old_sfx, new_sfx) ->
            let n = String.length value and m = String.length old_sfx in
            if n >= m && String.sub value (n - m) m = old_sfx then
              Some (String.sub value 0 (n - m) ^ new_sfx)
            else None)
          suffixes
      in
      (match applied with Some v -> v | None -> value ^ " Ltd.")
  | Nonprintable_addition ->
      value ^ Ucrypto.Prng.pick g [| "\xC2\xA0"; "\xE2\x80\x8B"; "\xC2\xAD" |]
  | Whitespace_substitution -> (
      match String.index_opt value ' ' with
      | Some i ->
          String.sub value 0 i
          ^ Ucrypto.Prng.pick g [| "\xC2\xA0"; "\xE3\x80\x80"; "\xE2\x80\x89" |]
          ^ String.sub value (i + 1) (String.length value - i - 1)
      | None -> value ^ "\xC2\xA0")
  | Resembling_substitution ->
      let swap cp =
        match cp with
        | 0x6F (* o *) -> 0x3BF (* Greek omicron *)
        | 0x61 (* a *) -> 0x430 (* Cyrillic a *)
        | 0x65 (* e *) -> 0x435 (* Cyrillic e *)
        | 0x2D -> 0x2013 (* en dash *)
        | cp -> cp
      in
      let swapped = ref false in
      Unicode.Codec.utf8_of_cps
        (Array.map
           (fun cp ->
             if (not !swapped) && swap cp <> cp && Ucrypto.Prng.bool g then begin
               swapped := true;
               swap cp
             end
             else cp)
           cps)
  | Illegal_replacement ->
      if Array.exists (fun cp -> cp > 0x7F) cps then
        Unicode.Codec.utf8_of_cps
          (Array.map (fun cp -> if cp > 0x7F then 0xFFFD else cp) cps)
      else begin
        (* Pure-ASCII input: model the lossy Teletex round trip by
           knocking out one letter. *)
        let letters =
          Array.to_list cps
          |> List.mapi (fun i cp -> (i, cp))
          |> List.filter (fun (_, cp) -> Unicode.Props.is_ascii_letter cp)
        in
        match letters with
        | [] -> value ^ "\xEF\xBF\xBD"
        | _ ->
            let i, _ = List.nth letters (Ucrypto.Prng.int g (List.length letters)) in
            let out = Array.copy cps in
            out.(i) <- 0xFFFD;
            Unicode.Codec.utf8_of_cps out
      end

(* Canonical comparison key: diacritics folded (canonical decomposition
   with combining marks dropped), skeletonized, case-folded, decoration
   symbols dropped, colon treated as a word break, whitespace collapsed
   and trimmed.  U+FFFD survives as a one-character wildcard. *)
let variant_key value =
  let decomposed = Unicode.Normalize.decompose (Unicode.Codec.cps_of_utf8 value) in
  let base =
    Array.of_list
      (List.filter
         (fun cp -> Unicode.Normalize.combining_class cp = 0)
         (Array.to_list decomposed))
  in
  let skel = Unicode.Confusables.skeleton base in
  let out = ref [] and prev_space = ref true in
  Array.iter
    (fun cp ->
      let cp = if cp = Char.code ':' then 0x20 else cp in
      if Unicode.Props.is_whitespace cp then begin
        if not !prev_space then begin
          out := 0x20 :: !out;
          prev_space := true
        end
      end
      else if cp = 0xAE || cp = 0x2122 || cp = 0xA9 then () (* (R) / TM / (C) *)
      else begin
        out := Unicode.Props.ascii_lowercase cp :: !out;
        prev_space := false
      end)
    skel;
  let trimmed = match !out with 0x20 :: rest -> rest | l -> l in
  Unicode.Codec.utf8_of_cps (Array.of_list (List.rev trimmed))

(* Equality where U+FFFD (a replaced character) matches exactly one code
   point on the other side. *)
let wildcard_equal a b =
  let a = Unicode.Codec.cps_of_utf8 a and b = Unicode.Codec.cps_of_utf8 b in
  let na = Array.length a and nb = Array.length b in
  if na <> nb then false
  else begin
    let rec go i =
      i >= na
      || ((a.(i) = b.(i) || a.(i) = 0xFFFD || b.(i) = 0xFFFD) && go (i + 1))
    in
    go 0
  end

let legal_suffixes =
  [ "ltd."; "ltd"; "llc"; "gmbh"; "ag"; "s.r.o."; "a.s."; "ooo"; "inc"; "inc.";
    "s.a"; "sa"; "sp. z o.o." ]

let strip_legal_suffix key =
  let key = String.trim key in
  let matched =
    List.find_opt
      (fun sfx ->
        let n = String.length key and m = String.length sfx in
        n > m && String.sub key (n - m) m = sfx)
      legal_suffixes
  in
  match matched with
  | Some sfx -> String.trim (String.sub key 0 (String.length key - String.length sfx))
  | None -> key

let is_variant_pair a b =
  a <> b
  &&
  let depunct k = String.concat "" (String.split_on_char ',' k) in
  let ka = strip_legal_suffix (variant_key a) and kb = strip_legal_suffix (variant_key b) in
  wildcard_equal ka kb || wildcard_equal (depunct ka) (depunct kb)

type evasion = {
  engine : string;
  strategy : strategy;
  original : string;
  variant : string;
  evaded : bool;
}

let issuer_key = X509.Certificate.mock_keypair ~seed:"obfuscation-ca" ()

let cert_with_org org =
  let tbs =
    X509.Certificate.make_tbs
      ~issuer:(X509.Dn.of_list [ (X509.Attr.Organization_name, "Obfuscation CA") ])
      ~subject:
        (X509.Dn.of_list
           [ (X509.Attr.Organization_name, org);
             (X509.Attr.Common_name, "service.evil-entity.test") ])
      ~not_before:(Asn1.Time.make 2025 1 1) ~not_after:(Asn1.Time.make 2025 4 1)
      ~spki:(X509.Certificate.keypair_spki issuer_key)
      ~sig_alg:X509.Certificate.Oids.mock_signature
      ~extensions:
        [ X509.Extension.subject_alt_name
            [ X509.General_name.Dns_name "service.evil-entity.test" ] ]
      ()
  in
  X509.Certificate.sign issuer_key tbs

let evasion_matrix ?(seed = 7) () =
  let g = Ucrypto.Prng.create seed in
  let original = "Evil Entity Corp" in
  List.concat_map
    (fun strategy ->
      let variant = apply g strategy original in
      let cert = cert_with_org variant in
      List.map
        (fun engine ->
          let rule = { Engine.field = `Org; pattern = original } in
          {
            engine = engine.Engine.name;
            strategy;
            original;
            variant;
            evaded = not (Engine.matches engine rule cert);
          })
        Engine.all)
    strategies

let render ppf =
  Format.fprintf ppf "== Table 3: value variant strategies in Subject fields ==@.";
  List.iter
    (fun s ->
      Format.fprintf ppf "%s:@." (strategy_name s);
      List.iter
        (fun (a, b) ->
          Format.fprintf ppf "    %-45s | %s  (detected as variants: %b)@." a b
            (is_variant_pair a b))
        (examples s))
    strategies;
  Format.fprintf ppf "@.== Traffic obfuscation: rule evasion matrix ==@.";
  Format.fprintf ppf "%-40s | %-9s | %-9s | %-9s@." "Strategy" "Snort" "Suricata" "Zeek";
  let by_strategy = evasion_matrix () in
  List.iter
    (fun s ->
      let row e =
        match
          List.find_opt (fun r -> r.strategy = s && r.engine = e) by_strategy
        with
        | Some r -> if r.evaded then "evaded" else "caught"
        | None -> "-"
      in
      Format.fprintf ppf "%-40s | %-9s | %-9s | %-9s@." (strategy_name s) (row "Snort")
        (row "Suricata") (row "Zeek"))
    strategies
