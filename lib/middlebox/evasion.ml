type finding = { id : string; description : string; demonstrated : bool }

let issuer_key = X509.Certificate.mock_keypair ~seed:"evasion-ca" ()

let make_cert ~subject ~sans =
  let tbs =
    X509.Certificate.make_tbs
      ~issuer:(X509.Dn.of_list [ (X509.Attr.Organization_name, "Evasion CA") ])
      ~subject
      ~not_before:(Asn1.Time.make 2025 1 1) ~not_after:(Asn1.Time.make 2025 4 1)
      ~spki:(X509.Certificate.keypair_spki issuer_key)
      ~sig_alg:X509.Certificate.Oids.mock_signature
      ~extensions:
        [ X509.Extension.subject_alt_name
            (List.map (fun d -> X509.General_name.Dns_name d) sans) ]
      ()
  in
  X509.Certificate.sign issuer_key tbs

let duplicated_cn_divergence () =
  let subject =
    X509.Dn.single
      [ X509.Dn.atv X509.Attr.Common_name "benign.example.com";
        X509.Dn.atv X509.Attr.Common_name "evil.example.com" ]
  in
  let cert = make_cert ~subject ~sans:[ "benign.example.com" ] in
  let rule = { Engine.field = `Cn; pattern = "evil.example.com" } in
  let snort_sees = Engine.matches Engine.snort rule cert in
  let zeek_sees = Engine.matches Engine.zeek rule cert in
  {
    id = "P2.1a";
    description =
      "Duplicated CNs split the engines: Snort (first CN) misses the malicious \
       value that Zeek (last CN) extracts";
    demonstrated = (not snort_sees) && zeek_sees;
  }

let non_ia5_san_skip () =
  let subject = X509.Dn.of_list [ (X509.Attr.Common_name, "cover.example.com") ] in
  let cert =
    make_cert ~subject ~sans:[ "cover.example.com"; "evil-\xC3\xA9ntity.example.com" ]
  in
  let rule = { Engine.field = `San; pattern = "evil-\xC3\xA9ntity.example.com" } in
  let zeek_sees = Engine.matches Engine.zeek rule cert in
  let snort_sees = Engine.matches Engine.snort rule cert in
  {
    id = "P2.1b";
    description =
      "Zeek ignores non-IA5String SAN entries, so a raw U-label SAN escapes its \
       logs while Snort still matches it";
    demonstrated = (not zeek_sees) && snort_sees;
  }

let case_sensitive_bypass () =
  let subject = X509.Dn.of_list [ (X509.Attr.Organization_name, "EVIL Entity") ] in
  let cert = make_cert ~subject ~sans:[ "x.example.com" ] in
  let rule = { Engine.field = `Org; pattern = "evil entity" } in
  let suricata_sees = Engine.matches Engine.suricata rule cert in
  let snort_sees = Engine.matches Engine.snort rule cert in
  {
    id = "P2.1c";
    description =
      "Suricata's case-sensitive subject matching is bypassed by case variants \
       that case-insensitive engines still catch";
    demonstrated = (not suricata_sees) && snort_sees;
  }

let ulabel_san_client_acceptance () =
  let hostname = "b\xC3\xBCcher.example.com" in
  let subject = X509.Dn.of_list [ (X509.Attr.Common_name, hostname) ] in
  let cert = make_cert ~subject ~sans:[ hostname ] in
  List.map
    (fun (c : Clients.t) ->
      (c.Clients.name, Result.is_ok (c.Clients.validate cert ~hostname)))
    Clients.all

let malformed_punycode_client_acceptance () =
  let san = "xn--ab_c.example.com" in
  let subject = X509.Dn.of_list [ (X509.Attr.Common_name, san) ] in
  let cert = make_cert ~subject ~sans:[ san ] in
  List.map
    (fun (c : Clients.t) ->
      (c.Clients.name, Result.is_ok (c.Clients.validate cert ~hostname:san)))
    Clients.all

let all_findings () =
  [ duplicated_cn_divergence (); non_ia5_san_skip (); case_sensitive_bypass () ]

let render ppf =
  Format.fprintf ppf "== Section 6.2: middlebox and client findings ==@.";
  List.iter
    (fun f ->
      Format.fprintf ppf "[%s] %s: %s@." f.id
        (if f.demonstrated then "demonstrated" else "NOT demonstrated")
        f.description)
    (all_findings ());
  Format.fprintf ppf "U-label SAN accepted by clients:@.";
  List.iter
    (fun (name, ok) -> Format.fprintf ppf "    %-12s %s@." name (if ok then "accepts" else "rejects"))
    (ulabel_san_client_acceptance ());
  Format.fprintf ppf "Malformed-Punycode SAN accepted by clients:@.";
  List.iter
    (fun (name, ok) -> Format.fprintf ppf "    %-12s %s@." name (if ok then "accepts" else "rejects"))
    (malformed_punycode_client_acceptance ())
