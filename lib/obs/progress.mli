(** Throttled progress reporting to stderr: a single rewritten line with
    count, rate and (when a total is known) percentage and ETA.

    Reporting is active only when stderr is a TTY and [OBS_QUIET] is
    unset/empty; {!set_override} (driven by the binaries'
    [--progress] / [--no-progress] flags) beats both checks.  Inactive
    reporters cost one integer add per {!tick}. *)

type t

val set_override : bool option -> unit
(** [Some true] forces reporting on, [Some false] off, [None] restores
    the TTY + [OBS_QUIET] autodetection.  Applies to reporters created
    afterwards. *)

val override : unit -> bool option

val create : ?total:int -> ?out:out_channel -> ?interval:float ->
  label:string -> unit -> t
(** [create ~label ()] starts a reporter.  [total] enables percentage
    and ETA; [out] defaults to stderr (tests point it elsewhere);
    [interval] is the minimum seconds between emitted lines
    (default 0.25). *)

val active : t -> bool
(** Whether this reporter will ever write. *)

val tick : ?by:int -> t -> unit
val finish : t -> unit
(** Emit a final line (if active and anything was counted) and a
    newline, so subsequent output starts clean. *)

val count : t -> int
