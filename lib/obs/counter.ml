(* The value lives in a one-slot float array: OCaml boxes a [mutable
   float] field in a mixed record, which would allocate on every
   increment — a float-array slot updates in place, keeping [inc] safe
   for paths hit millions of times per run. *)
type t = { name : string; help : string; cell : float array }

let make ?(help = "") name = { name; help; cell = [| 0.0 |] }
let inc t = t.cell.(0) <- t.cell.(0) +. 1.0

let add t x =
  if x < 0.0 then invalid_arg "Obs.Counter.add: negative increment";
  t.cell.(0) <- t.cell.(0) +. x

let value t = t.cell.(0)
let name t = t.name
let help t = t.help
let reset t = t.cell.(0) <- 0.0

let make_child = make

module Labeled = struct
  type counter = t

  type t = {
    name : string;
    help : string;
    label : string;
    children : (string, counter) Hashtbl.t;
  }

  let make ?(help = "") ~label name =
    { name; help; label; children = Hashtbl.create 16 }

  let get t v =
    match Hashtbl.find_opt t.children v with
    | Some c -> c
    | None ->
        let c = make_child ~help:t.help t.name in
        Hashtbl.replace t.children v c;
        c

  let children t =
    Hashtbl.fold (fun k c acc -> (k, c) :: acc) t.children []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)

  let name t = t.name
  let help t = t.help
  let label t = t.label
end
