(* The value lives in a [float Atomic.t]: hot paths increment from
   several domains at once (the sharded pipeline), so the update must
   be a CAS loop rather than an in-place store — a plain mutable cell
   silently loses increments under contention.  Counts stay exact:
   float adds of small integers are associative-enough (exact up to
   2^53), and the CAS retries until the add lands. *)
type t = { name : string; help : string; cell : float Atomic.t }

let make ?(help = "") name = { name; help; cell = Atomic.make 0.0 }

let rec atomic_add cell x =
  let old = Atomic.get cell in
  if not (Atomic.compare_and_set cell old (old +. x)) then atomic_add cell x

let inc t = atomic_add t.cell 1.0

let add t x =
  if x < 0.0 then invalid_arg "Obs.Counter.add: negative increment";
  atomic_add t.cell x

let value t = Atomic.get t.cell
let name t = t.name
let help t = t.help
let reset t = Atomic.set t.cell 0.0

let make_child = make

module Labeled = struct
  type counter = t

  (* The children table is read far more than written; a single mutex
     per family is enough because hot paths cache the child handle and
     only pay the lock on first use of a label. *)
  type t = {
    name : string;
    help : string;
    label : string;
    lock : Mutex.t;
    children : (string, counter) Hashtbl.t;
  }

  let make ?(help = "") ~label name =
    { name; help; label; lock = Mutex.create (); children = Hashtbl.create 16 }

  let get t v =
    Mutex.protect t.lock (fun () ->
        match Hashtbl.find_opt t.children v with
        | Some c -> c
        | None ->
            let c = make_child ~help:t.help t.name in
            Hashtbl.replace t.children v c;
            c)

  let children t =
    Mutex.protect t.lock (fun () ->
        Hashtbl.fold (fun k c acc -> (k, c) :: acc) t.children [])
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)

  let name t = t.name
  let help t = t.help
  let label t = t.label
end
