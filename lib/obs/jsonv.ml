type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

exception Bad of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let bad msg = raise (Bad (!pos, msg)) in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> bad (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    let w = String.length word in
    if !pos + w <= n && String.sub s !pos w = word then (
      pos := !pos + w;
      value)
    else bad ("expected " ^ word)
  in
  let hex4 () =
    if !pos + 4 > n then bad "truncated \\u escape";
    let v = int_of_string ("0x" ^ String.sub s !pos 4) in
    pos := !pos + 4;
    v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> bad "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          (match peek () with
          | Some '"' -> Buffer.add_char buf '"'
          | Some '\\' -> Buffer.add_char buf '\\'
          | Some '/' -> Buffer.add_char buf '/'
          | Some 'b' -> Buffer.add_char buf '\b'
          | Some 'f' -> Buffer.add_char buf '\012'
          | Some 'n' -> Buffer.add_char buf '\n'
          | Some 'r' -> Buffer.add_char buf '\r'
          | Some 't' -> Buffer.add_char buf '\t'
          | Some 'u' ->
              advance ();
              let v = try hex4 () with _ -> bad "bad \\u escape" in
              (* Encode the code point as UTF-8; surrogate pairs are
                 passed through as two 3-byte sequences, which is
                 enough for round-tripping our own output. *)
              if v < 0x80 then Buffer.add_char buf (Char.chr v)
              else if v < 0x800 then (
                Buffer.add_char buf (Char.chr (0xC0 lor (v lsr 6)));
                Buffer.add_char buf (Char.chr (0x80 lor (v land 0x3F))))
              else (
                Buffer.add_char buf (Char.chr (0xE0 lor (v lsr 12)));
                Buffer.add_char buf (Char.chr (0x80 lor ((v lsr 6) land 0x3F)));
                Buffer.add_char buf (Char.chr (0x80 lor (v land 0x3F))));
              pos := !pos - 1
          | _ -> bad "bad escape");
          advance ();
          go ())
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> num_char c | None -> false) do
      advance ()
    done;
    if !pos = start then bad "expected a number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None ->
        pos := start;
        bad "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> bad "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then (
          advance ();
          Obj [])
        else
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev ((k, v) :: acc))
            | _ -> bad "expected ',' or '}'"
          in
          members []
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then (
          advance ();
          List [])
        else
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | Some ']' ->
                advance ();
                List (List.rev (v :: acc))
            | _ -> bad "expected ',' or ']'"
          in
          elements []
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
  in
  try
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then Error (Printf.sprintf "trailing content at byte %d" !pos)
    else Ok v
  with Bad (at, msg) -> Error (Printf.sprintf "%s at byte %d" msg at)

let member k = function
  | Obj kvs -> List.assoc_opt k kvs
  | _ -> None
