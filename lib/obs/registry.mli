(** The metric registry: the set of metrics an exporter walks.  Library
    code registers into {!default}; tests can build private registries
    to stay isolated from the process-wide state.

    All constructors are idempotent per registry: asking twice for the
    same name returns the same metric, so instrumented modules can
    resolve handles lazily without coordination.  Re-registering a name
    as a *different* metric kind raises [Invalid_argument] — that is
    always a bug. *)

type metric =
  | Counter of Counter.t
  | Labeled_counter of Counter.Labeled.t
  | Gauge of Gauge.t
  | Histogram of Histogram.t
  | Labeled_histogram of Histogram.Labeled.t

type t

val create : unit -> t
val default : t

val counter : ?registry:t -> ?help:string -> string -> Counter.t
val labeled_counter :
  ?registry:t -> ?help:string -> label:string -> string -> Counter.Labeled.t
val gauge : ?registry:t -> ?help:string -> string -> Gauge.t
val histogram :
  ?registry:t -> ?help:string -> ?buckets:float array -> string -> Histogram.t
val labeled_histogram :
  ?registry:t -> ?help:string -> ?buckets:float array -> label:string ->
  string -> Histogram.Labeled.t

val metrics : t -> (string * metric) list
(** All registered metrics sorted by name (deterministic export
    order). *)

val find : t -> string -> metric option

val metric_name : metric -> string
