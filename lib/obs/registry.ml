type metric =
  | Counter of Counter.t
  | Labeled_counter of Counter.Labeled.t
  | Gauge of Gauge.t
  | Histogram of Histogram.t
  | Labeled_histogram of Histogram.Labeled.t

(* The table is mutex-guarded: [intern]'s find-or-create must be atomic
   when several domains resolve the same metric name concurrently, or
   two handles for one name would split the counts. *)
type t = { lock : Mutex.t; table : (string, metric) Hashtbl.t }

let create () = { lock = Mutex.create (); table = Hashtbl.create 64 }
let default = create ()

let metric_name = function
  | Counter c -> Counter.name c
  | Labeled_counter c -> Counter.Labeled.name c
  | Gauge g -> Gauge.name g
  | Histogram h -> Histogram.name h
  | Labeled_histogram h -> Histogram.Labeled.name h

let find t name = Mutex.protect t.lock (fun () -> Hashtbl.find_opt t.table name)

let metrics t =
  Mutex.protect t.lock (fun () ->
      Hashtbl.fold (fun k m acc -> (k, m) :: acc) t.table [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* Idempotent lookup-or-create; a kind clash on an existing name is a
   programming error worth failing loudly on. *)
let intern ?(registry = default) name ~extract ~build =
  Mutex.protect registry.lock @@ fun () ->
  match Hashtbl.find_opt registry.table name with
  | Some m -> (
      match extract m with
      | Some v -> v
      | None ->
          invalid_arg
            (Printf.sprintf "Obs.Registry: %s already registered as another kind"
               name))
  | None ->
      let v, m = build () in
      Hashtbl.replace registry.table name m;
      v

let counter ?registry ?help name =
  intern ?registry name
    ~extract:(function Counter c -> Some c | _ -> None)
    ~build:(fun () ->
      let c = Counter.make ?help name in
      (c, Counter c))

let labeled_counter ?registry ?help ~label name =
  intern ?registry name
    ~extract:(function Labeled_counter c -> Some c | _ -> None)
    ~build:(fun () ->
      let c = Counter.Labeled.make ?help ~label name in
      (c, Labeled_counter c))

let gauge ?registry ?help name =
  intern ?registry name
    ~extract:(function Gauge g -> Some g | _ -> None)
    ~build:(fun () ->
      let g = Gauge.make ?help name in
      (g, Gauge g))

let histogram ?registry ?help ?buckets name =
  intern ?registry name
    ~extract:(function Histogram h -> Some h | _ -> None)
    ~build:(fun () ->
      let h = Histogram.make ?help ?buckets name in
      (h, Histogram h))

let labeled_histogram ?registry ?help ?buckets ~label name =
  intern ?registry name
    ~extract:(function Labeled_histogram h -> Some h | _ -> None)
    ~build:(fun () ->
      let h = Histogram.Labeled.make ?help ?buckets ~label name in
      (h, Labeled_histogram h))
