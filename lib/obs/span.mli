(** Wall-clock spans.  [with_ "lint" f] times [f] and feeds the
    duration into the per-span histogram family
    [unicert_span_seconds{span="lint"}] of the target registry.  Spans
    nest freely (a stack tracks the active path, see {!current}); the
    duration is recorded even when [f] raises.

    When {!Trace} is enabled each span additionally emits a
    Begin/End pair (category ["stage"]) on the emitting domain's
    trace track; when {!Profile} is enabled the GC work inside the
    span is attributed to its name. *)

val histogram_name : string
(** ["unicert_span_seconds"]. *)

val with_ : ?registry:Registry.t -> string -> (unit -> 'a) -> 'a

val current : unit -> string list
(** The active span stack, innermost first.  Empty outside any span. *)

val sum : ?registry:Registry.t -> string -> float
(** Accumulated wall-clock seconds recorded for a span name so far
    (0. if the span never ran). *)

val count : ?registry:Registry.t -> string -> int
(** Number of completed executions of a span name. *)
