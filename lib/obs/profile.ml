let on = Atomic.make false
let enable () = Atomic.set on true
let disable () = Atomic.set on false
let enabled () = Atomic.get on

(* --- GC attribution --------------------------------------------------- *)

let gc_family ?registry ~help name =
  Registry.labeled_counter ?registry ~help ~label:"span" name

(* [Gc.quick_stat] covers everything except minor words: its
   [minor_words] field is only refreshed by a minor collection, so a
   span that allocates without filling the minor heap would read as
   zero.  [Gc.minor_words ()] reads the live allocation pointer. *)
type gc_snapshot = { stat : Gc.stat; minor_words : float }

let gc_snapshot () = { stat = Gc.quick_stat (); minor_words = Gc.minor_words () }

let record_gc ?registry name before =
  let after = gc_snapshot () in
  let before, before_minor = (before.stat, before.minor_words) in
  let after, after_minor = (after.stat, after.minor_words) in
  (* quick_stat is process-wide under OCaml 5: a concurrent domain's
     collection between the two snapshots can make a delta negative.
     Clamp — attribution is a profile, not an invariant. *)
  let add metric ~help v =
    if v > 0. then
      Counter.add (Counter.Labeled.get (gc_family ?registry ~help metric) name) v
  in
  add "unicert_gc_minor_words_total"
    ~help:"Minor-heap words allocated inside a span"
    (Float.max 0. (after_minor -. before_minor));
  add "unicert_gc_major_words_total"
    ~help:"Major-heap words allocated inside a span"
    (Float.max 0. (after.Gc.major_words -. before.Gc.major_words));
  add "unicert_gc_minor_collections_total"
    ~help:"Minor collections completed inside a span"
    (float_of_int
       (max 0 (after.Gc.minor_collections - before.Gc.minor_collections)));
  add "unicert_gc_major_collections_total"
    ~help:"Major collections completed inside a span"
    (float_of_int
       (max 0 (after.Gc.major_collections - before.Gc.major_collections)))

(* --- top-K slow certificates ------------------------------------------ *)

type slow = { index : int; seconds : float; stage : string }

let top_k = Atomic.make 16

let set_top_k n =
  if n < 1 then invalid_arg "Obs.Profile.set_top_k: must be >= 1";
  Atomic.set top_k n

let slow_lock = Mutex.create ()

(* Kept sorted ascending by [seconds]; head = cheapest survivor, so
   admission is a single head comparison. *)
let worst : slow list ref = ref []

let note_slow ~index ~seconds ~stage =
  if Atomic.get on then
    Mutex.protect slow_lock (fun () ->
        let k = Atomic.get top_k in
        let l = !worst in
        let full = List.length l >= k in
        let floor = match l with s :: _ -> s.seconds | [] -> neg_infinity in
        if (not full) || seconds > floor then begin
          let merged =
            List.merge
              (fun a b -> Float.compare a.seconds b.seconds)
              [ { index; seconds; stage } ]
              l
          in
          worst := (if List.length merged > k then List.tl merged else merged)
        end)

let slowest () = Mutex.protect slow_lock (fun () -> List.rev !worst)
let reset_slow () = Mutex.protect slow_lock (fun () -> worst := [])

let print_top oc =
  match slowest () with
  | [] -> ()
  | l ->
      Printf.fprintf oc "slowest certificates (top %d):\n" (List.length l);
      List.iter
        (fun s ->
          Printf.fprintf oc "  index %-8d %9.3f ms  dominated by %s\n" s.index
            (1000. *. s.seconds) s.stage)
        l
