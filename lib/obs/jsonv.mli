(** A minimal JSON value type with a parser and string escaping —
    just enough to round-trip the trace exporter output in tests and
    the @trace-smoke validator without an external JSON dependency.

    Numbers are stored as [float] (like JavaScript); objects preserve
    member order and do not de-duplicate keys. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Parse a complete JSON document.  [Error msg] carries the byte
    offset of the first offending character. *)

val member : string -> t -> t option
(** [member k (Obj _)] is the first value bound to [k]; [None] for
    missing keys and non-objects. *)

val escape : string -> string
(** [escape s] is [s] as a double-quoted JSON string literal, with
    quotes, backslashes and control characters escaped. *)
