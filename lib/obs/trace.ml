type arg = Str of string | Int of int | Float of float | Bool of bool

type phase = Begin | End | Instant | Async_begin | Async_end

type event = {
  name : string;
  cat : string;
  ph : phase;
  ts : float;
  tid : int;
  id : int;
  args : (string * arg) list;
}

let default_ring = 1 lsl 18
let default_sample = 16

(* [on] is the only state the disabled fast path touches: every
   emitter is one atomic load when tracing is off.  Everything else
   lives behind [lock]; pushes are short critical sections and only
   happen while tracing, where the (sampled) event rate is a tiny
   fraction of the certificate rate. *)
let on = Atomic.make false
let sample_period = Atomic.make default_sample
let lock = Mutex.create ()

(* The ring is a struct of arrays, not an [event array]: a per-event
   record stored into a long-lived array is young when written and
   live at the next minor collection, so every traced event would be
   promoted to the major heap and become major garbage on eviction —
   measured at ~4x the cost of the store itself.  Flat int/float/
   string slots promote nothing (span names and categories are static
   literals; only the rare args list allocates). *)
type ring = {
  mutable name : string array;
  mutable cat : string array;
  mutable ph : int array;
  mutable ts : float array;
  mutable tid : int array;
  mutable id : int array;
  mutable args : (string * arg) list array;
  mutable cap : int;
  mutable start : int;  (** index of the oldest event *)
  mutable len : int;
  mutable evicted : int;
}

let rb =
  { name = [||]; cat = [||]; ph = [||]; ts = [||]; tid = [||]; id = [||];
    args = [||]; cap = 0; start = 0; len = 0; evicted = 0 }

let ph_to_int = function
  | Begin -> 0
  | End -> 1
  | Instant -> 2
  | Async_begin -> 3
  | Async_end -> 4

let ph_of_int = function
  | 0 -> Begin
  | 1 -> End
  | 2 -> Instant
  | 3 -> Async_begin
  | _ -> Async_end
let out_file = ref None
let epoch = ref 0.
let dirty = ref false
let hooked = ref false

let enabled () = Atomic.get on
let dropped () = Mutex.protect lock (fun () -> rb.evicted)

let now_us () = (Unix.gettimeofday () -. !epoch) *. 1e6
let tid () = (Domain.self () :> int)

(* Manual lock/unlock: nothing in the critical section allocates or
   raises, and [Mutex.protect]'s closure would itself be a young
   allocation per event. *)
let emit ?(args = []) ?(id = 0) ph ~cat name =
  if Atomic.get on then begin
    let ts = now_us () and tid = tid () in
    Mutex.lock lock;
    let cap = rb.cap in
    if cap > 0 then begin
      let i =
        if rb.len = cap then begin
          (* Full: the oldest slot is recycled for the newest event. *)
          let i = rb.start in
          rb.start <- (rb.start + 1) mod cap;
          rb.evicted <- rb.evicted + 1;
          i
        end
        else begin
          let i = (rb.start + rb.len) mod cap in
          rb.len <- rb.len + 1;
          i
        end
      in
      rb.name.(i) <- name;
      rb.cat.(i) <- cat;
      rb.ph.(i) <- ph_to_int ph;
      rb.ts.(i) <- ts;
      rb.tid.(i) <- tid;
      rb.id.(i) <- id;
      rb.args.(i) <- args;
      dirty := true
    end;
    Mutex.unlock lock
  end

let emit_begin ?args ~cat name = emit ?args Begin ~cat name
let emit_end ?args ~cat name = emit ?args End ~cat name
let instant ?args ~cat name = emit ?args Instant ~cat name
let async_begin ?args ~cat ~id name = emit ?args ~id Async_begin ~cat name
let async_end ?args ~cat ~id name = emit ?args ~id Async_end ~cat name

let span ?args ~cat name f =
  if not (Atomic.get on) then f ()
  else begin
    emit_begin ?args ~cat name;
    Fun.protect ~finally:(fun () -> emit_end ~cat name) f
  end

(* For call sites that already maintain their own invocation counter:
   one atomic load when tracing is off, two plus a [mod] when on —
   cheaper than the DLS tick of [sampled_span] on paths hit hundreds
   of thousands of times per run. *)
let sample_hit tick =
  Atomic.get on
  &&
  let p = Atomic.get sample_period in
  p <= 1 || tick mod p = 0

(* Per-domain call counter for sampling: deterministic per domain and
   lock-free.  The counter only advances while tracing is on, so the
   sampled spans of a run are a stable subset for a given --jobs. *)
let tick_key : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0)

let sampled_span ?args ~cat name f =
  if not (Atomic.get on) then f ()
  else begin
    let p = Atomic.get sample_period in
    let hit =
      p <= 1
      ||
      let t = Domain.DLS.get tick_key in
      incr t;
      !t mod p = 0
    in
    if hit then span ?args ~cat name f else f ()
  end

(* --- snapshot & repair ------------------------------------------------ *)

let raw_events () =
  Mutex.protect lock (fun () ->
      List.init rb.len (fun k ->
          let i = (rb.start + k) mod rb.cap in
          {
            name = rb.name.(i);
            cat = rb.cat.(i);
            ph = ph_of_int rb.ph.(i);
            ts = rb.ts.(i);
            tid = rb.tid.(i);
            id = rb.id.(i);
            args = rb.args.(i);
          }))

(* Eviction can orphan an End (its Begin fell off the ring) or leave a
   Begin open (snapshot taken mid-span).  Repair per domain track:
   orphan Ends are dropped, open Begins get a synthetic closing End —
   innermost first — at the latest buffered timestamp, so every track
   stays balanced and monotonic for the Chrome importer. *)
let balance (evs : event list) =
  let stacks : (int, event list ref) Hashtbl.t = Hashtbl.create 8 in
  let stack_of tid =
    match Hashtbl.find_opt stacks tid with
    | Some r -> r
    | None ->
        let r = ref [] in
        Hashtbl.add stacks tid r;
        r
  in
  let max_ts = List.fold_left (fun m (e : event) -> Float.max m e.ts) 0. evs in
  let kept =
    List.filter
      (fun (e : event) ->
        match e.ph with
        | Begin ->
            let st = stack_of e.tid in
            st := e :: !st;
            true
        | End -> (
            let st = stack_of e.tid in
            match !st with
            | _ :: rest ->
                st := rest;
                true
            | [] -> false)
        | Instant | Async_begin | Async_end -> true)
      evs
  in
  let closers =
    Hashtbl.fold
      (fun _tid st acc ->
        List.fold_left
          (fun acc (b : event) ->
            { b with ph = End; ts = max_ts; args = [] } :: acc)
          acc !st)
      stacks []
  in
  kept @ List.rev closers

let snapshot () = balance (raw_events ())

(* --- exporters -------------------------------------------------------- *)

let ph_string = function
  | Begin -> "B"
  | End -> "E"
  | Instant -> "i"
  | Async_begin -> "b"
  | Async_end -> "e"

let arg_json = function
  | Str s -> Jsonv.escape s
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%.9g" f
  | Bool b -> if b then "true" else "false"

let event_json (e : event) =
  let buf = Buffer.create 128 in
  Buffer.add_string buf
    (Printf.sprintf "{\"name\": %s, \"cat\": %s, \"ph\": \"%s\", \"ts\": %.3f, \"pid\": 1, \"tid\": %d"
       (Jsonv.escape e.name) (Jsonv.escape e.cat) (ph_string e.ph) e.ts e.tid);
  (match e.ph with
  | Async_begin | Async_end ->
      Buffer.add_string buf (Printf.sprintf ", \"id\": %d" e.id)
  | Instant -> Buffer.add_string buf ", \"s\": \"t\""
  | Begin | End -> ());
  if e.args <> [] then begin
    Buffer.add_string buf ", \"args\": {";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string buf ", ";
        Buffer.add_string buf (Jsonv.escape k);
        Buffer.add_string buf ": ";
        Buffer.add_string buf (arg_json v))
      e.args;
    Buffer.add_char buf '}'
  end;
  Buffer.add_char buf '}';
  Buffer.contents buf

let to_chrome evs =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\": [\n";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf (event_json e))
    evs;
  Buffer.add_string buf "\n], \"displayTimeUnit\": \"ms\"}\n";
  Buffer.contents buf

let to_jsonl evs =
  let buf = Buffer.create 4096 in
  List.iter
    (fun e ->
      Buffer.add_string buf (event_json e);
      Buffer.add_char buf '\n')
    evs;
  Buffer.contents buf

let flush () =
  match !out_file with
  | None -> ()
  | Some path ->
      let fresh = Mutex.protect lock (fun () -> !dirty) in
      if fresh then begin
        let evs = snapshot () in
        let body =
          if Filename.check_suffix path ".jsonl" then to_jsonl evs
          else to_chrome evs
        in
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () -> output_string oc body);
        Mutex.protect lock (fun () -> dirty := false)
      end

let enable ?(ring = default_ring) ?(sample = default_sample) ?file () =
  if ring < 16 then invalid_arg "Obs.Trace.enable: ring must be >= 16";
  if sample < 1 then invalid_arg "Obs.Trace.enable: sample must be >= 1";
  Mutex.protect lock (fun () ->
      rb.name <- Array.make ring "";
      rb.cat <- Array.make ring "";
      rb.ph <- Array.make ring 0;
      rb.ts <- Array.make ring 0.;
      rb.tid <- Array.make ring 0;
      rb.id <- Array.make ring 0;
      rb.args <- Array.make ring [];
      rb.cap <- ring;
      rb.start <- 0;
      rb.len <- 0;
      rb.evicted <- 0;
      out_file := file;
      epoch := Unix.gettimeofday ();
      dirty := false);
  Atomic.set sample_period sample;
  Atomic.set on true;
  (* Backstop for early-exit code paths (exit 3/4 without reaching the
     CLI's explicit flush): best-effort, the CLI surfaces write errors
     itself where it can. *)
  if not !hooked then begin
    hooked := true;
    at_exit (fun () ->
        try flush ()
        with Sys_error msg ->
          Printf.eprintf "warning: trace flush failed: %s\n%!" msg)
  end

let disable () =
  Atomic.set on false;
  Mutex.protect lock (fun () ->
      rb.name <- [||];
      rb.cat <- [||];
      rb.ph <- [||];
      rb.ts <- [||];
      rb.tid <- [||];
      rb.id <- [||];
      rb.args <- [||];
      rb.cap <- 0;
      rb.start <- 0;
      rb.len <- 0;
      rb.evicted <- 0;
      out_file := None;
      dirty := false)
