(** Structured tracing: ring-buffered timeline events exported in the
    Chrome [trace_event] JSON format (load the file in Perfetto or
    chrome://tracing) or as compact JSONL for diffing.

    Tracing is process-global and off by default; every emitter is a
    single atomic load when disabled, so instrumented hot paths cost
    nothing until [enable] is called.  Events land in a fixed-size
    ring buffer (oldest evicted first) guarded by one mutex —
    correctness over micro-optimisation; the default sampling of
    per-lint / per-model spans keeps the push rate low enough that
    contention is irrelevant (DESIGN.md §10).

    The event [tid] is the emitting domain's id, so worker-domain
    spans render as separate tracks alongside {!Span} stage spans
    (which emit Begin/End pairs here when tracing is on). *)

type arg = Str of string | Int of int | Float of float | Bool of bool

type phase =
  | Begin  (** "B": opens a duration slice on this domain's track *)
  | End  (** "E": closes the innermost open slice *)
  | Instant  (** "i": a point event (breaker trip, hedge outcome...) *)
  | Async_begin  (** "b": opens an async slice keyed by [id] *)
  | Async_end  (** "e": closes the async slice keyed by [id] *)

type event = {
  name : string;
  cat : string;  (** category: "stage", "par", "net", "fetch", "lint", ... *)
  ph : phase;
  ts : float;  (** microseconds since [enable] *)
  tid : int;  (** emitting domain id *)
  id : int;  (** correlation id for async phases; 0 otherwise *)
  args : (string * arg) list;
}

val default_ring : int
(** Default ring capacity, [262144] events. *)

val default_sample : int
(** Default sampling period for {!sampled_span}, [16]. *)

val enable : ?ring:int -> ?sample:int -> ?file:string -> unit -> unit
(** Start tracing into a fresh ring of [ring] events (default
    {!default_ring}, min 16).  [sample] is the {!sampled_span} period
    (default {!default_sample}; 1 traces every invocation).  When
    [file] is given, {!flush} — also registered via [at_exit] —
    writes the buffer there: Chrome JSON, or JSONL when the name ends
    in [.jsonl].  Raises [Invalid_argument] on a ring < 16 or sample
    < 1. *)

val disable : unit -> unit
(** Stop tracing and drop the buffer (without flushing). *)

val enabled : unit -> bool
val dropped : unit -> int
(** Events evicted from the ring since [enable]. *)

val emit_begin : ?args:(string * arg) list -> cat:string -> string -> unit
val emit_end : ?args:(string * arg) list -> cat:string -> string -> unit
val instant : ?args:(string * arg) list -> cat:string -> string -> unit

val async_begin :
  ?args:(string * arg) list -> cat:string -> id:int -> string -> unit

val async_end :
  ?args:(string * arg) list -> cat:string -> id:int -> string -> unit

val span : ?args:(string * arg) list -> cat:string -> string -> (unit -> 'a) -> 'a
(** [span ~cat name f] brackets [f] in a Begin/End pair (the End is
    emitted even when [f] raises).  No-op when tracing is off. *)

val sampled_span :
  ?args:(string * arg) list -> cat:string -> string -> (unit -> 'a) -> 'a
(** Like {!span}, but only every [sample]-th call per domain actually
    emits — the rate limiter for per-lint / per-parser-model spans
    whose call counts dwarf the pipeline stages. *)

val sample_hit : int -> bool
(** [sample_hit tick] is true when tracing is on and [tick] lands on
    the sampling period — for call sites that already maintain an
    invocation counter and want to skip {!sampled_span}'s per-domain
    tick on a very hot path.  Wrap the body in {!span} on a hit. *)

val snapshot : unit -> event list
(** The buffered events in emission order, repaired to keep Begin/End
    pairing balanced per domain track: an End whose Begin was evicted
    is dropped, and a Begin still open at snapshot time is closed by
    a synthetic End at the latest buffered timestamp. *)

val to_chrome : event list -> string
(** Chrome [trace_event] JSON: [{"traceEvents": [...],
    "displayTimeUnit": "ms"}]. *)

val to_jsonl : event list -> string
(** One event object per line, same schema as the Chrome array
    elements. *)

val flush : unit -> unit
(** Write {!snapshot} to the [enable]-time [file], if any and if
    anything new was recorded since the last flush.  Raises
    [Sys_error] when the file cannot be written. *)
