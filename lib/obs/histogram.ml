(* Buckets, sum and count are all atomics: [observe] runs on worker
   domains concurrently, and a racy [mutable count] would drift from
   the bucket totals.  Each observation is three independent atomic
   updates, so a mid-flight snapshot can be off by a transient
   observation — acceptable for telemetry, unlike lost updates. *)
type t = {
  name : string;
  help : string;
  bounds : float array;
  counts : int Atomic.t array;  (* length = Array.length bounds + 1; last is +Inf *)
  sum_cell : float Atomic.t;
  count : int Atomic.t;
}

let log_buckets ~base ~factor ~count =
  if base <= 0.0 || factor <= 1.0 || count < 1 then
    invalid_arg "Obs.Histogram.log_buckets";
  Array.init count (fun i -> base *. (factor ** float_of_int i))

let default_latency_buckets = log_buckets ~base:1e-6 ~factor:4.0 ~count:14

let make ?(help = "") ?(buckets = default_latency_buckets) name =
  let n = Array.length buckets in
  if n = 0 then invalid_arg "Obs.Histogram.make: no buckets";
  for i = 1 to n - 1 do
    if buckets.(i) <= buckets.(i - 1) then
      invalid_arg "Obs.Histogram.make: bounds not strictly increasing"
  done;
  { name; help; bounds = Array.copy buckets;
    counts = Array.init (n + 1) (fun _ -> Atomic.make 0);
    sum_cell = Atomic.make 0.0; count = Atomic.make 0 }

let rec atomic_addf cell x =
  let old = Atomic.get cell in
  if not (Atomic.compare_and_set cell old (old +. x)) then atomic_addf cell x

let observe t v =
  let n = Array.length t.bounds in
  (* Bounds are few (≤ 20); a linear scan beats binary search overhead. *)
  let rec slot i = if i >= n || v <= t.bounds.(i) then i else slot (i + 1) in
  let i = slot 0 in
  ignore (Atomic.fetch_and_add t.counts.(i) 1);
  atomic_addf t.sum_cell v;
  ignore (Atomic.fetch_and_add t.count 1)

let sum t = Atomic.get t.sum_cell
let count t = Atomic.get t.count
let name t = t.name
let help t = t.help
let bounds t = Array.copy t.bounds

let cumulative t =
  let acc = ref 0 in
  Array.to_list t.bounds
  |> List.mapi (fun i b ->
         acc := !acc + Atomic.get t.counts.(i);
         (b, !acc))

let make_child = make

module Labeled = struct
  type histogram = t

  type t = {
    name : string;
    help : string;
    label : string;
    buckets : float array;
    lock : Mutex.t;
    children : (string, histogram) Hashtbl.t;
  }

  let make ?(help = "") ?(buckets = default_latency_buckets) ~label name =
    { name; help; label; buckets; lock = Mutex.create ();
      children = Hashtbl.create 16 }

  let get t v =
    Mutex.protect t.lock (fun () ->
        match Hashtbl.find_opt t.children v with
        | Some h -> h
        | None ->
            let h = make_child ~help:t.help ~buckets:t.buckets t.name in
            Hashtbl.replace t.children v h;
            h)

  let children t =
    Mutex.protect t.lock (fun () ->
        Hashtbl.fold (fun k h acc -> (k, h) :: acc) t.children [])
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)

  let name t = t.name
  let help t = t.help
  let label t = t.label
end
