(* [sum] sits in a float-array slot for the same reason as
   {!Counter.t}: a boxed mutable float field would allocate per
   observation. *)
type t = {
  name : string;
  help : string;
  bounds : float array;
  counts : int array;  (* length = Array.length bounds + 1; last is +Inf *)
  sum_cell : float array;
  mutable count : int;
}

let log_buckets ~base ~factor ~count =
  if base <= 0.0 || factor <= 1.0 || count < 1 then
    invalid_arg "Obs.Histogram.log_buckets";
  Array.init count (fun i -> base *. (factor ** float_of_int i))

let default_latency_buckets = log_buckets ~base:1e-6 ~factor:4.0 ~count:14

let make ?(help = "") ?(buckets = default_latency_buckets) name =
  let n = Array.length buckets in
  if n = 0 then invalid_arg "Obs.Histogram.make: no buckets";
  for i = 1 to n - 1 do
    if buckets.(i) <= buckets.(i - 1) then
      invalid_arg "Obs.Histogram.make: bounds not strictly increasing"
  done;
  { name; help; bounds = Array.copy buckets; counts = Array.make (n + 1) 0;
    sum_cell = [| 0.0 |]; count = 0 }

let observe t v =
  let n = Array.length t.bounds in
  (* Bounds are few (≤ 20); a linear scan beats binary search overhead. *)
  let rec slot i = if i >= n || v <= t.bounds.(i) then i else slot (i + 1) in
  let i = slot 0 in
  t.counts.(i) <- t.counts.(i) + 1;
  t.sum_cell.(0) <- t.sum_cell.(0) +. v;
  t.count <- t.count + 1

let sum t = t.sum_cell.(0)
let count t = t.count
let name t = t.name
let help t = t.help
let bounds t = Array.copy t.bounds

let cumulative t =
  let acc = ref 0 in
  Array.to_list t.bounds
  |> List.mapi (fun i b ->
         acc := !acc + t.counts.(i);
         (b, !acc))

let make_child = make

module Labeled = struct
  type histogram = t

  type t = {
    name : string;
    help : string;
    label : string;
    buckets : float array;
    children : (string, histogram) Hashtbl.t;
  }

  let make ?(help = "") ?(buckets = default_latency_buckets) ~label name =
    { name; help; label; buckets; children = Hashtbl.create 16 }

  let get t v =
    match Hashtbl.find_opt t.children v with
    | Some h -> h
    | None ->
        let h = make_child ~help:t.help ~buckets:t.buckets t.name in
        Hashtbl.replace t.children v h;
        h

  let children t =
    Hashtbl.fold (fun k h acc -> (k, h) :: acc) t.children []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)

  let name t = t.name
  let help t = t.help
  let label t = t.label
end
