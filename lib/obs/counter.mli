(** Monotonically increasing counters (Prometheus semantics: a float
    that only ever grows).  Increments are atomic (CAS loop), so
    counters stay exact when several pipeline domains share one
    handle. *)

type t

val make : ?help:string -> string -> t
(** [make name] creates an unregistered counter — use
    {!Registry.counter} to create-and-register in one step. *)

val inc : t -> unit
(** Add 1. *)

val add : t -> float -> unit
(** Add a non-negative amount.  @raise Invalid_argument on a negative
    increment — counters never go down. *)

val value : t -> float
val name : t -> string
val help : t -> string

val reset : t -> unit
(** Zero the counter (test support only). *)

(** A counter family keyed by one label, e.g. per-lint or per-flaw
    counts.  Children are created on first use; [get] is a single
    hashtable probe, so hot paths should cache the child handle. *)
module Labeled : sig
  type counter := t
  type t

  val make : ?help:string -> label:string -> string -> t
  val get : t -> string -> counter
  (** [get family v] returns the child for label value [v], creating it
      on first use. *)

  val children : t -> (string * counter) list
  (** [(label value, child)] pairs sorted by label value. *)

  val name : t -> string
  val help : t -> string
  val label : t -> string
end
