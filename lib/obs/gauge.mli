(** Gauges: instantaneous values that can move both ways (queue depths,
    current scale, resident set sizes). *)

type t

val make : ?help:string -> string -> t
val set : t -> float -> unit
val add : t -> float -> unit
val sub : t -> float -> unit
val value : t -> float
val name : t -> string
val help : t -> string
