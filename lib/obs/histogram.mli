(** Fixed-bucket histograms with Prometheus [le] (less-or-equal)
    semantics: an observation lands in the first bucket whose upper
    bound is >= the value, so a value exactly on an edge belongs to
    that edge's bucket.  Sum and count are tracked alongside, which is
    all a latency distribution needs. *)

type t

val log_buckets : base:float -> factor:float -> count:int -> float array
(** [log_buckets ~base ~factor ~count] returns [count] strictly
    increasing upper bounds [base, base*factor, base*factor^2, ...].
    @raise Invalid_argument if [base <= 0.], [factor <= 1.] or
    [count < 1]. *)

val default_latency_buckets : float array
(** 1µs .. ~67s in powers of 4 — wide enough for both a single lint
    check and a full corpus pass. *)

val make : ?help:string -> ?buckets:float array -> string -> t
(** [make name] uses {!default_latency_buckets} unless [buckets]
    (strictly increasing upper bounds) is given. *)

val observe : t -> float -> unit

val sum : t -> float
val count : t -> int
val name : t -> string
val help : t -> string
val bounds : t -> float array

val cumulative : t -> (float * int) list
(** Per-bound cumulative counts in [le] form, excluding the implicit
    [+Inf] bucket (whose cumulative count is {!count}). *)

(** A histogram family keyed by one label (per-span latencies, per
    parser-model decode times). *)
module Labeled : sig
  type histogram := t
  type t

  val make : ?help:string -> ?buckets:float array -> label:string -> string -> t
  val get : t -> string -> histogram
  val children : t -> (string * histogram) list
  val name : t -> string
  val help : t -> string
  val label : t -> string
end
