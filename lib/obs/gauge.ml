type t = { name : string; help : string; mutable value : float }

let make ?(help = "") name = { name; help; value = 0.0 }
let set t v = t.value <- v
let add t v = t.value <- t.value +. v
let sub t v = t.value <- t.value -. v
let value t = t.value
let name t = t.name
let help t = t.help
