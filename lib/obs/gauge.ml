type t = { name : string; help : string; value : float Atomic.t }

let make ?(help = "") name = { name; help; value = Atomic.make 0.0 }
let set t v = Atomic.set t.value v

let rec atomic_add cell x =
  let old = Atomic.get cell in
  if not (Atomic.compare_and_set cell old (old +. x)) then atomic_add cell x

let add t v = atomic_add t.value v
let sub t v = atomic_add t.value (-.v)
let value t = Atomic.get t.value
let name t = t.name
let help t = t.help
