(** Hot-path profiling: per-span GC attribution and a top-K slow-cert
    log.  Off by default ([--profile] enables it); when off, the
    instrumented paths pay one atomic load.

    GC attribution: {!Span.with_} takes a {!gc_snapshot} around the
    body and feeds the deltas into per-span counter families —
    [unicert_gc_minor_words_total{span=...}],
    [unicert_gc_major_words_total{span=...}],
    [unicert_gc_minor_collections_total{span=...}],
    [unicert_gc_major_collections_total{span=...}] — so the exporter
    shows which stage allocates.  Deltas are clamped non-negative
    (another domain's collection can otherwise skew a quick_stat
    pair).

    Slow-cert log: the pipeline reports each certificate's total
    processing time and its most expensive stage; {!slowest} keeps the
    worst K. *)

val enable : unit -> unit
val disable : unit -> unit
val enabled : unit -> bool

type gc_snapshot
(** [Gc.quick_stat] plus the live [Gc.minor_words] allocation pointer
    (quick_stat's own minor-word count only refreshes on a minor
    collection, which a small span may never trigger). *)

val gc_snapshot : unit -> gc_snapshot

val record_gc : ?registry:Registry.t -> string -> gc_snapshot -> unit
(** [record_gc name before] adds the [gc_snapshot () - before] deltas
    to span [name]'s GC counter families. *)

type slow = { index : int; seconds : float; stage : string }
(** A slow certificate: corpus index, end-to-end seconds, and the
    stage (decode/lint/classify/aggregate) that dominated it. *)

val set_top_k : int -> unit
(** Capacity of the slow-cert log (default 16; raises
    [Invalid_argument] below 1). *)

val note_slow : index:int -> seconds:float -> stage:string -> unit
(** Offer one certificate's timing; kept only if it beats the current
    top K.  No-op when profiling is off. *)

val slowest : unit -> slow list
(** The current top K, slowest first. *)

val reset_slow : unit -> unit

val print_top : out_channel -> unit
(** Human-readable slow-cert table; prints nothing when the log is
    empty. *)
