type t = {
  label : string;
  total : int option;
  out : out_channel;
  interval : float;
  active : bool;
  start : float;
  mutable n : int;
  mutable last_emit : float;
  mutable emitted : bool;
}

let override_state : bool option Atomic.t = Atomic.make None

let set_override o = Atomic.set override_state o
let override () = Atomic.get override_state

let auto_active () =
  let quiet =
    match Sys.getenv_opt "OBS_QUIET" with Some v when v <> "" -> true | _ -> false
  in
  (not quiet) && (try Unix.isatty Unix.stderr with Unix.Unix_error _ -> false)

let create ?total ?(out = stderr) ?(interval = 0.25) ~label () =
  (* Only the coordinating (main) domain ever emits: concurrent worker
     domains each run their own shard pass, and interleaved \r rewrites
     would shred the line.  Worker meters stay inactive but still
     count. *)
  let active =
    Domain.is_main_domain ()
    && (match Atomic.get override_state with Some b -> b | None -> auto_active ())
  in
  { label; total; out; interval; active; start = Unix.gettimeofday ();
    n = 0; last_emit = 0.0; emitted = false }

let active t = t.active
let count t = t.n

let render t now =
  let elapsed = now -. t.start in
  let rate = if elapsed > 0.0 then float_of_int t.n /. elapsed else 0.0 in
  match t.total with
  | Some total when total > 0 ->
      let pct = 100.0 *. float_of_int t.n /. float_of_int total in
      let eta =
        if rate > 0.0 && t.n < total then
          Printf.sprintf " ETA %.0fs" (float_of_int (total - t.n) /. rate)
        else ""
      in
      Printf.sprintf "\r%s %d/%d (%.1f%%) %.0f/s%s" t.label t.n total pct rate eta
  | _ -> Printf.sprintf "\r%s %d %.0f/s" t.label t.n rate

let emit t now =
  t.last_emit <- now;
  t.emitted <- true;
  output_string t.out (render t now);
  flush t.out

let tick ?(by = 1) t =
  t.n <- t.n + by;
  if t.active then begin
    let now = Unix.gettimeofday () in
    if now -. t.last_emit >= t.interval then emit t now
  end

let finish t =
  if t.active && t.n > 0 then begin
    emit t (Unix.gettimeofday ());
    output_string t.out "\n";
    flush t.out
  end
