let histogram_name = "unicert_span_seconds"

let family registry =
  Registry.labeled_histogram ?registry ~label:"span"
    ~help:"Wall-clock time per instrumented span" histogram_name

let stack : string list ref = ref []

let with_ ?registry name f =
  let hist = Histogram.Labeled.get (family registry) name in
  stack := name :: !stack;
  let t0 = Unix.gettimeofday () in
  Fun.protect
    ~finally:(fun () ->
      let dt = Unix.gettimeofday () -. t0 in
      (match !stack with _ :: rest -> stack := rest | [] -> ());
      Histogram.observe hist dt)
    f

let current () = !stack

let child registry name = Histogram.Labeled.get (family registry) name
let sum ?registry name = Histogram.sum (child registry name)
let count ?registry name = Histogram.count (child registry name)
