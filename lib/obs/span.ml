let histogram_name = "unicert_span_seconds"

let family registry =
  Registry.labeled_histogram ?registry ~label:"span"
    ~help:"Wall-clock time per instrumented span" histogram_name

(* The nesting stack is domain-local: a global ref would interleave the
   stacks of concurrent worker domains, corrupting [current] and the
   pop in the [finally].  Durations still land in the shared (atomic)
   histogram family, so per-span totals aggregate across domains. *)
let stack_key : string list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let stack () = Domain.DLS.get stack_key

let with_ ?registry name f =
  let hist = Histogram.Labeled.get (family registry) name in
  let stack = stack () in
  stack := name :: !stack;
  (* Tracing and profiling ride along when enabled: a span becomes a
     Begin/End pair on the emitting domain's trace track, and the GC
     work inside it is attributed to its name.  Both checks are one
     atomic load when the features are off. *)
  let traced = Trace.enabled () in
  if traced then Trace.emit_begin ~cat:"stage" name;
  let gc0 = if Profile.enabled () then Some (Profile.gc_snapshot ()) else None in
  let t0 = Unix.gettimeofday () in
  Fun.protect
    ~finally:(fun () ->
      let dt = Unix.gettimeofday () -. t0 in
      (match !stack with _ :: rest -> stack := rest | [] -> ());
      Histogram.observe hist dt;
      (match gc0 with
      | Some before -> Profile.record_gc ?registry name before
      | None -> ());
      if traced then Trace.emit_end ~cat:"stage" name)
    f

let current () = !(stack ())

let child registry name = Histogram.Labeled.get (family registry) name
let sum ?registry name = Histogram.sum (child registry name)
let count ?registry name = Histogram.count (child registry name)
