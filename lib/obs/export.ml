(* Number rendering shared by both formats: integral values print with
   no fractional part so counters look like counts, everything else
   keeps enough digits to round-trip a latency sum. *)
let fmt_num v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let fmt_bound b = Printf.sprintf "%g" b

(* ------------------------------------------------------------------ *)
(* Prometheus text exposition.                                         *)

let escape_label v =
  let buf = Buffer.create (String.length v + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let escape_help v =
  let buf = Buffer.create (String.length v + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let header buf name help kind =
  if help <> "" then
    Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" name (escape_help help));
  Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind)

let prom_histogram buf name labels (h : Histogram.t) =
  let with_le le =
    let le = Printf.sprintf "le=\"%s\"" le in
    match labels with "" -> le | l -> l ^ "," ^ le
  in
  List.iter
    (fun (b, c) ->
      Buffer.add_string buf
        (Printf.sprintf "%s_bucket{%s} %d\n" name (with_le (fmt_bound b)) c))
    (Histogram.cumulative h);
  Buffer.add_string buf
    (Printf.sprintf "%s_bucket{%s} %d\n" name (with_le "+Inf") (Histogram.count h));
  let subscript suffix v =
    match labels with
    | "" -> Printf.sprintf "%s_%s %s\n" name suffix v
    | l -> Printf.sprintf "%s_%s{%s} %s\n" name suffix l v
  in
  Buffer.add_string buf (subscript "sum" (fmt_num (Histogram.sum h)));
  Buffer.add_string buf (subscript "count" (string_of_int (Histogram.count h)))

let to_prometheus registry =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (name, metric) ->
      match metric with
      | Registry.Counter c ->
          header buf name (Counter.help c) "counter";
          Buffer.add_string buf
            (Printf.sprintf "%s %s\n" name (fmt_num (Counter.value c)))
      | Registry.Labeled_counter lc ->
          header buf name (Counter.Labeled.help lc) "counter";
          List.iter
            (fun (lv, c) ->
              Buffer.add_string buf
                (Printf.sprintf "%s{%s=\"%s\"} %s\n" name
                   (Counter.Labeled.label lc) (escape_label lv)
                   (fmt_num (Counter.value c))))
            (Counter.Labeled.children lc)
      | Registry.Gauge g ->
          header buf name (Gauge.help g) "gauge";
          Buffer.add_string buf
            (Printf.sprintf "%s %s\n" name (fmt_num (Gauge.value g)))
      | Registry.Histogram h ->
          header buf name (Histogram.help h) "histogram";
          prom_histogram buf name "" h
      | Registry.Labeled_histogram lh ->
          header buf name (Histogram.Labeled.help lh) "histogram";
          List.iter
            (fun (lv, h) ->
              let labels =
                Printf.sprintf "%s=\"%s\"" (Histogram.Labeled.label lh)
                  (escape_label lv)
              in
              prom_histogram buf name labels h)
            (Histogram.Labeled.children lh))
    (Registry.metrics registry);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* JSON dump.                                                          *)

let json_string v =
  let buf = Buffer.create (String.length v + 8) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    v;
  Buffer.add_char buf '"';
  Buffer.contents buf

let json_counter ~name ~help ?label_pair value =
  let labels =
    match label_pair with
    | None -> ""
    | Some (k, v) ->
        Printf.sprintf ", \"label\": %s, \"value_of_label\": %s" (json_string k)
          (json_string v)
  in
  Printf.sprintf "{\"name\": %s, \"help\": %s%s, \"value\": %s}"
    (json_string name) (json_string help) labels (fmt_num value)

let json_histogram ~name ~help ?label_pair (h : Histogram.t) =
  let labels =
    match label_pair with
    | None -> ""
    | Some (k, v) ->
        Printf.sprintf ", \"label\": %s, \"value_of_label\": %s" (json_string k)
          (json_string v)
  in
  let buckets =
    (List.map
       (fun (b, c) -> Printf.sprintf "{\"le\": %s, \"count\": %d}" (fmt_bound b) c)
       (Histogram.cumulative h)
    @ [ Printf.sprintf "{\"le\": \"+Inf\", \"count\": %d}" (Histogram.count h) ])
    |> String.concat ", "
  in
  Printf.sprintf
    "{\"name\": %s, \"help\": %s%s, \"buckets\": [%s], \"sum\": %s, \"count\": %d}"
    (json_string name) (json_string help) labels buckets
    (fmt_num (Histogram.sum h)) (Histogram.count h)

let to_json registry =
  let counters = ref [] and gauges = ref [] and histograms = ref [] in
  List.iter
    (fun (name, metric) ->
      match metric with
      | Registry.Counter c ->
          counters := json_counter ~name ~help:(Counter.help c) (Counter.value c)
                      :: !counters
      | Registry.Labeled_counter lc ->
          List.iter
            (fun (lv, c) ->
              counters :=
                json_counter ~name ~help:(Counter.Labeled.help lc)
                  ~label_pair:(Counter.Labeled.label lc, lv)
                  (Counter.value c)
                :: !counters)
            (Counter.Labeled.children lc)
      | Registry.Gauge g ->
          gauges := json_counter ~name ~help:(Gauge.help g) (Gauge.value g)
                    :: !gauges
      | Registry.Histogram h ->
          histograms := json_histogram ~name ~help:(Histogram.help h) h
                        :: !histograms
      | Registry.Labeled_histogram lh ->
          List.iter
            (fun (lv, h) ->
              histograms :=
                json_histogram ~name ~help:(Histogram.Labeled.help lh)
                  ~label_pair:(Histogram.Labeled.label lh, lv)
                  h
                :: !histograms)
            (Histogram.Labeled.children lh))
    (Registry.metrics registry);
  Printf.sprintf
    "{\"counters\": [%s],\n \"gauges\": [%s],\n \"histograms\": [%s]}\n"
    (String.concat ",\n  " (List.rev !counters))
    (String.concat ",\n  " (List.rev !gauges))
    (String.concat ",\n  " (List.rev !histograms))

let write_file registry path =
  let body =
    if Filename.check_suffix path ".json" then to_json registry
    else to_prometheus registry
  in
  let oc = open_out path in
  output_string oc body;
  close_out oc
