(** Registry exporters: Prometheus text exposition and a JSON dump.
    Both walk the registry in sorted-name order, so output is
    deterministic for a deterministic run. *)

val to_prometheus : Registry.t -> string
(** Prometheus text exposition format (version 0.0.4): [# HELP] /
    [# TYPE] headers, escaped label values, histograms expanded to
    cumulative [_bucket{le=...}] series plus [_sum] / [_count]. *)

val to_json : Registry.t -> string
(** Equivalent JSON object: [{"counters": [...], "gauges": [...],
    "histograms": [...]}], with labeled families flattened into one
    sample per label value. *)

val write_file : Registry.t -> string -> unit
(** Write to a path, choosing the format by extension: [.json] gets
    {!to_json}, anything else the Prometheus text form. *)
