(** The synthetic Unicert corpus, calibrated to the paper's published
    marginals (DESIGN.md §4): issuer population and volumes (§4.2,
    Table 2), per-issuer noncompliance rates and flaw mixes (§4.3,
    Table 11), trust status at and after issuance, yearly volume curves
    (Figure 2), and validity-period distributions (Figure 3).

    Every generated certificate is a real, signed DER object; the
    linter rediscovers the injected defects from the bytes. *)

type trust = Public | Limited | Untrusted

val trust_name : trust -> string

type issuer = {
  org : string;          (** IssuerOrganizationName *)
  region : string;
  trust_now : trust;     (** Table 2 marker (current status) *)
  trust_at_issuance : trust;
      (** status when issuing (the paper's footnote-3 convention) *)
  volume : float;        (** paper-scale Unicert volume (thousands) *)
  nc_rate : float;       (** noncompliance probability in the first year *)
  nc_decay : float;      (** yearly multiplicative decline of [nc_rate] *)
  idn_share : float;     (** fraction of IDNCerts vs multilingual-text *)
  years : int * int * float;  (** first year, last year, yearly growth *)
  flaw_mix : (Flaws.t * float) list;
  aggregate : bool;
      (** a long-tail bucket rather than a single organization (kept out
          of Table 2's named rows) *)
  keypair : X509.Certificate.keypair;
}

val issuers : issuer list
(** The calibrated population (weights normalized internally). *)

type entry = {
  cert : X509.Certificate.t;
  issued : Asn1.Time.t;
  issuer : issuer;
  flaws : Flaws.t list;  (** injected defects; [] for compliant certs *)
  is_idn : bool;
}

val default_scale : int
(** 60_000 — overridable via the [UNICERT_SCALE] environment variable
    read by the binaries (not here). *)

val generate_entry : Ucrypto.Prng.t -> issuer -> entry
(** [generate_entry g issuer] draws one certificate from the issuer's
    distribution. *)

val generate_at : seed:int -> int -> entry
(** [generate_at ~seed index] is corpus entry [index]: a pure function
    of [(seed, index)] (each index owns a splitmix stream keyed by the
    pair), so any contiguous index range — a shard of a parallel run, a
    checkpoint resume — regenerates byte-identical certificates without
    replaying earlier indices. *)

val issuer_of_org : string -> issuer option
(** Look an issuer up by organization name — rehydrates the issuer
    record when replaying stored analysis rows. *)

val entry_of_cert : X509.Certificate.t -> (entry, Faults.Error.t) result
(** Rebuild an {!entry} from a certificate fetched off a CT log:
    recovers the issuer record via the certificate's
    IssuerOrganizationName and re-derives [issued] / [is_idn] from the
    bytes.  [flaws] is left empty — the linter rediscovers defects from
    the DER, which is all downstream analysis consumes.  [Error] means
    the certificate does not belong to the calibrated corpus. *)

val prewarm : unit -> unit
(** Force the module's lazy state (issuer weights, telemetry handles).
    Call once from the coordinating domain before spawning workers —
    [Lazy.force] is not domain-safe in OCaml 5. *)

val iter : ?scale:int -> seed:int -> (entry -> unit) -> unit
(** [iter ~seed f] streams [scale] corpus entries through [f] without
    materializing the corpus (constant memory). *)

type delivery =
  | Entry of entry
  | Corrupt of { der : string; kind : Faults.Mutator.kind; error : Faults.Error.t }
      (** a mutated DER blob that no longer parses, with the decode
          error it produces *)

val iter_deliveries :
  ?scale:int ->
  ?start:int ->
  ?stop:int ->
  ?mutator:Faults.Mutator.plan ->
  ?drop:bool ->
  seed:int ->
  (int -> delivery -> unit) ->
  unit
(** Fault-aware streaming over indices [start, stop) ([start] defaults
    to 0, [stop] to [scale]).  The callback receives the corpus index.
    With [mutator], indices selected by {!Faults.Mutator.hits} deliver
    [Corrupt] — mutated until the bytes genuinely fail
    [X509.Certificate.parse] (counted in
    [unicert_fault_injected_total{kind}]).  With [drop] those indices
    deliver nothing at all, which yields the clean-subset reference run:
    corruption decisions consume no generator randomness, so the
    surviving entries are byte-identical between the two modes.
    Entries are pure per-index ({!generate_at}), so a sub-range —
    checkpoint resume, a parallel shard — generates only its own
    indices and still yields the same bytes a full pass would. *)

val generate : ?scale:int -> seed:int -> unit -> entry list
(** Materialized variant for small scales. *)

val analysis_date : Asn1.Time.t
(** April 2025 — the paper's final analysis month, used for the "alive"
    classification. *)

val populate_log :
  ?scale:int -> ?precert_rate:float -> seed:int -> Log.t -> int * int
(** [populate_log ~seed log] submits corpus certificates to a CT log,
    running the precertificate flow (poison → SCT → final) for
    [precert_rate] of them (default 0.547, the paper's §4.1 precert
    share by entries) and plain submission otherwise.  Returns
    [(precert entries, certificate entries)] — the dataset-filtering
    step then discards the former by their poison extension. *)
