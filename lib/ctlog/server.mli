(** A CT log front end over {!Log}: paged get-entries / get-sth /
    get-consistency served as sealed {!Wire} bodies, plus the
    misbehaviours the fetch client must survive — delayed publication
    and an equivocating variant serving tree heads from a shadow tree
    with one leaf flipped (a split view). *)

type t

val default_page_cap : int
(** 64 entries per get-entries response. *)

val create : ?page_cap:int -> name:string -> Log.t -> t
(** Starts with everything currently in the log published. *)

val name : t -> string
val page_cap : t -> int

val published : t -> int
(** The visible tree size: get-sth and get-entries answer only up to
    here. *)

val requests : t -> int
(** Requests served so far (drives schedules). *)

val set_published : t -> int -> unit
val publish_all : t -> unit

val schedule_publish : t -> at_request:int -> size:int -> unit
(** Once [at_request] requests have been served, raise the published
    size to [size] (growing-log simulation). *)

val equivocate_after : t -> at_request:int -> flip:int -> unit
(** After [at_request] requests, serve tree heads and consistency
    proofs from a shadow tree whose leaf [flip] is bit-flipped — a
    split view that {!Fetch} must detect via
    {!Merkle.verify_consistency}. *)

val equivocating : t -> bool
(** Whether the shadow view is currently being served. *)

val handle : t -> Net.Transport.request -> string
(** The transport handler.  Endpoints: ["get-sth"] (page ignored),
    ["get-entries"] (page = start index, at most [page_cap] entries
    returned), ["get-consistency/<second>"] (page = first). *)
