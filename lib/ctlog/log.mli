(** A CT log server model (RFC 6962): accepts (pre)certificates,
    appends them to a Merkle tree, returns SCTs, and serves tree heads
    and proofs — the substrate the CT-monitor experiments index. *)

type sct = {
  log_id : string;       (** SHA-256 of the log's public identity *)
  timestamp : int;       (** logical submission time (entry index) *)
  signature : string;    (** binding over (log_id, leaf) *)
}

type entry = { index : int; der : string; precert : bool }

type t

val create : name:string -> t
val log_id : t -> string

val leaf_bytes : precert:bool -> string -> string
(** The Merkle leaf encoding of an entry: a precert marker byte followed
    by the DER — what {!Merkle.leaf_hash} is computed over.  Exposed so
    fetch clients can recompute leaf hashes for root verification. *)

val tree : t -> Merkle.t
(** The log's Merkle tree (read-only use: proofs over historical
    sizes). *)

val add_chain : t -> ?precert:bool -> string -> sct
(** [add_chain t der] appends a certificate (by its DER bytes) and
    returns its SCT. *)

val verify_sct : t -> der:string -> sct -> bool

val entries : t -> entry list
(** All entries, oldest first. *)

val size : t -> int
val tree_head : t -> string

val prove_inclusion : t -> int -> string list
val prove_consistency : t -> int -> string list

val get : t -> int -> entry option
