(* A CT log front end over [Log.t]: paged get-entries, get-sth and
   get-consistency served as sealed Wire bodies, plus the two
   misbehaviours the fetch client must survive — delayed publication
   (the visible tree size lags the real one until a scheduled request
   count) and equivocation (past a scheduled request count, tree heads
   and consistency proofs come from a shadow tree with one leaf
   flipped: a split view). *)

type t = {
  log : Log.t;
  name : string;
  page_cap : int;
  mutable published : int;
  mutable requests : int;  (* requests served, drives schedules *)
  mutable publish_schedule : (int * int) list;  (* (at_request, size) *)
  mutable equivocate : (int * int) option;  (* (at_request, flipped leaf) *)
  mutable shadow : (int * Merkle.t) option;  (* cache: (built_at_size, tree) *)
}

let default_page_cap = 64

let create ?(page_cap = default_page_cap) ~name log =
  if page_cap < 1 then invalid_arg "Ctlog.Server.create: page_cap < 1";
  {
    log;
    name;
    page_cap;
    published = Log.size log;
    requests = 0;
    publish_schedule = [];
    equivocate = None;
    shadow = None;
  }

let name t = t.name
let page_cap t = t.page_cap
let published t = t.published
let requests t = t.requests

let set_published t n =
  if n < 0 || n > Log.size t.log then invalid_arg "Ctlog.Server.set_published";
  t.published <- n

let publish_all t = t.published <- Log.size t.log

let schedule_publish t ~at_request ~size =
  t.publish_schedule <-
    List.sort compare ((at_request, size) :: t.publish_schedule)

let equivocate_after t ~at_request ~flip =
  t.equivocate <- Some (at_request, flip);
  t.shadow <- None

let equivocating t =
  match t.equivocate with
  | Some (at_request, _) -> t.requests > at_request
  | None -> false

(* The shadow tree: the log's leaves with leaf [flip] bit-flipped —
   a view that shares no consistent history with the real one. *)
let shadow_tree t flip =
  let size = Log.size t.log in
  match t.shadow with
  | Some (built, tree) when built = size -> tree
  | _ ->
      let tree = Merkle.create () in
      List.iter
        (fun (e : Log.entry) ->
          let der =
            if e.Log.index = flip && String.length e.Log.der > 0 then begin
              let b = Bytes.of_string e.Log.der in
              Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0x01));
              Bytes.to_string b
            end
            else e.Log.der
          in
          ignore (Merkle.append tree (Log.leaf_bytes ~precert:e.Log.precert der)))
        (Log.entries t.log);
      t.shadow <- Some (size, tree);
      tree

let view t =
  match t.equivocate with
  | Some (at_request, flip) when t.requests > at_request -> shadow_tree t flip
  | _ -> Log.tree t.log

(* Endpoints: "get-sth" (page = refresh counter, ignored),
   "get-consistency/<second>" (page = first), "get-entries" (page =
   start index; the server returns at most [page_cap] entries). *)
let handle t (req : Net.Transport.request) =
  t.requests <- t.requests + 1;
  List.iter
    (fun (at_request, size) ->
      if t.requests >= at_request && size > t.published then
        set_published t (min size (Log.size t.log)))
    t.publish_schedule;
  let tree = view t in
  let endpoint = req.Net.Transport.endpoint in
  if endpoint = "get-sth" then
    Wire.seal
      [ Printf.sprintf "sth %d %s" t.published
          (Wire.to_hex (Merkle.root_of_range tree t.published)) ]
  else if endpoint = "get-entries" then begin
    let start = req.Net.Transport.page in
    let stop = min t.published (start + t.page_cap) in
    if start < 0 || start >= t.published then
      Wire.seal [ Printf.sprintf "error 400 bad start %d" start ]
    else begin
      (* Entries come from the same view as the tree head: past the
         equivocation point the flipped leaf's bytes are served, so a
         page fetched from the forked world genuinely fails to
         reproduce a root trusted before the fork. *)
      let flipped =
        match t.equivocate with
        | Some (at_request, flip) when t.requests > at_request -> flip
        | _ -> -1
      in
      let lines = ref [] in
      List.iter
        (fun (e : Log.entry) ->
          if e.Log.index >= start && e.Log.index < stop then begin
            let der =
              if e.Log.index = flipped && String.length e.Log.der > 0 then begin
                let b = Bytes.of_string e.Log.der in
                Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0x01));
                Bytes.to_string b
              end
              else e.Log.der
            in
            lines :=
              Printf.sprintf "%d %s"
                (if e.Log.precert then 1 else 0)
                (Wire.to_hex der)
              :: !lines
          end)
        (Log.entries t.log);
      Wire.seal (Printf.sprintf "entries %d %d" start (stop - start)
                 :: List.rev !lines)
    end
  end
  else begin
    match String.index_opt endpoint '/' with
    | Some i when String.sub endpoint 0 i = "get-consistency" ->
        let second =
          int_of_string_opt
            (String.sub endpoint (i + 1) (String.length endpoint - i - 1))
        in
        let first = req.Net.Transport.page in
        (match second with
        | Some second
          when first >= 0 && first <= second && second <= Merkle.size tree ->
            let proof = Merkle.consistency_proof_range tree first second in
            Wire.seal
              (Printf.sprintf "consistency %d %d %d" first second
                 (List.length proof)
              :: List.map Wire.to_hex proof)
        | _ -> Wire.seal [ Printf.sprintf "error 400 bad range" ])
    | _ -> Wire.seal [ Printf.sprintf "error 404 %s" endpoint ]
  end
