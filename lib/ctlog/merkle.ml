type t = { mutable hashes : string array; mutable len : int }

let create () = { hashes = Array.make 16 ""; len = 0 }

let leaf_hash data = Ucrypto.Sha256.digest ("\x00" ^ data)
let node_hash l r = Ucrypto.Sha256.digest ("\x01" ^ l ^ r)

let append t leaf =
  if t.len = Array.length t.hashes then begin
    let bigger = Array.make (2 * t.len) "" in
    Array.blit t.hashes 0 bigger 0 t.len;
    t.hashes <- bigger
  end;
  t.hashes.(t.len) <- leaf_hash leaf;
  t.len <- t.len + 1;
  t.len - 1

let size t = t.len

(* Largest power of two strictly less than n (n >= 2). *)
let split_point n =
  let k = ref 1 in
  while !k * 2 < n do
    k := !k * 2
  done;
  !k

(* MTH over hashes[lo, hi). *)
let rec mth hashes lo hi =
  let n = hi - lo in
  if n = 0 then Ucrypto.Sha256.digest ""
  else if n = 1 then hashes.(lo)
  else begin
    let k = split_point n in
    node_hash (mth hashes lo (lo + k)) (mth hashes (lo + k) hi)
  end

let root t = mth t.hashes 0 t.len

let root_of_range t n =
  if n < 0 || n > t.len then invalid_arg "Merkle.root_of_range";
  mth t.hashes 0 n

(* PATH(m, D[n]) per RFC 6962 §2.1.1, over hashes[lo, hi). *)
let rec path hashes m lo hi =
  let n = hi - lo in
  if n <= 1 then []
  else begin
    let k = split_point n in
    if m < k then path hashes m lo (lo + k) @ [ mth hashes (lo + k) hi ]
    else path hashes (m - k) (lo + k) hi @ [ mth hashes lo (lo + k) ]
  end

let inclusion_proof t i =
  if i < 0 || i >= t.len then invalid_arg "Merkle.inclusion_proof";
  path t.hashes i 0 t.len

let verify_inclusion ~leaf ~index ~size ~proof ~root =
  if index >= size then false
  else begin
    let fn = ref index and sn = ref (size - 1) in
    let r = ref (leaf_hash leaf) in
    let ok = ref true in
    List.iter
      (fun p ->
        if !sn = 0 then ok := false
        else begin
          if !fn land 1 = 1 || !fn = !sn then begin
            r := node_hash p !r;
            if !fn land 1 = 0 then begin
              (* right-border node: skip to the next left turn *)
              while !fn land 1 = 0 && !fn <> 0 do
                fn := !fn lsr 1;
                sn := !sn lsr 1
              done
            end
          end
          else r := node_hash !r p;
          fn := !fn lsr 1;
          sn := !sn lsr 1
        end)
      proof;
    !ok && !sn = 0 && String.equal !r root
  end

(* SUBPROOF(m, D[n], b) per RFC 6962 §2.1.2. *)
let rec subproof hashes m lo hi b =
  let n = hi - lo in
  if m = n then if b then [] else [ mth hashes lo hi ]
  else begin
    let k = split_point n in
    if m <= k then subproof hashes m lo (lo + k) b @ [ mth hashes (lo + k) hi ]
    else subproof hashes (m - k) (lo + k) hi false @ [ mth hashes lo (lo + k) ]
  end

let consistency_proof t m =
  if m < 0 || m > t.len then invalid_arg "Merkle.consistency_proof";
  if m = 0 || m = t.len then [] else subproof t.hashes m 0 t.len true

(* Consistency between two historical sizes m <= n <= len: the proof a
   log server answers for get-consistency(first=m, second=n) even after
   the tree has grown past n. *)
let consistency_proof_range t m n =
  if m < 0 || m > n || n > t.len then
    invalid_arg "Merkle.consistency_proof_range";
  if m = 0 || m = n then [] else subproof t.hashes m 0 n true

let is_power_of_two n = n > 0 && n land (n - 1) = 0

(* RFC 9162 §2.1.4.2 verification algorithm. *)
let verify_consistency ~old_size ~old_root ~new_size ~new_root ~proof =
  if old_size = 0 then true
  else if old_size = new_size then proof = [] && String.equal old_root new_root
  else if proof = [] then false
  else begin
    let proof =
      if is_power_of_two old_size then old_root :: proof else proof
    in
    let proof = Array.of_list proof in
    let fn = ref (old_size - 1) and sn = ref (new_size - 1) in
    while !fn land 1 = 1 do
      fn := !fn lsr 1;
      sn := !sn lsr 1
    done;
    let fr = ref proof.(0) and sr = ref proof.(0) in
    let i = ref 1 in
    let ok = ref true in
    (try
       while !fn <> 0 || !sn <> 0 do
         if !sn = 0 then begin
           ok := false;
           raise Exit
         end;
         if !fn land 1 = 1 || !fn = !sn then begin
           if !i >= Array.length proof then begin
             ok := false;
             raise Exit
           end;
           fr := node_hash proof.(!i) !fr;
           sr := node_hash proof.(!i) !sr;
           incr i;
           if !fn land 1 = 0 then
             while !fn land 1 = 0 && !fn <> 0 do
               fn := !fn lsr 1;
               sn := !sn lsr 1
             done
         end
         else begin
           if !i >= Array.length proof then begin
             ok := false;
             raise Exit
           end;
           sr := node_hash !sr proof.(!i);
           incr i
         end;
         fn := !fn lsr 1;
         sn := !sn lsr 1
       done
     with Exit -> ());
    !ok && !i = Array.length proof
    && String.equal !fr old_root && String.equal !sr new_root
  end
