(** Resumable paged CT-log fetch over the simulated transport.

    One session per log: trust-on-first-use STH, every refreshed STH
    verified against the previously trusted (and checkpointed) one via
    {!Merkle.verify_consistency}; entries are buffered unverified and
    delivered only once the running leaf tree reproduces a verified
    root.  Split views quarantine the unverified range as
    [Faults.Error.Integrity] and abandon the log; persistent transport
    failure trips the per-log breaker and abandons with explicit
    degraded coverage instead of aborting the run.

    Determinism: per-log virtual clock and token bucket, pure fault
    sampling, and contiguous per-log corpus ranges joined in log order
    — a completed fetch is byte-identical across reruns and [--jobs]
    values at the same seeds. *)

type cfg = {
  logs : int;                     (** corpus is partitioned across this many logs *)
  net_seed : int option;          (** fault-plan seed; [None] derives from corpus seed *)
  fault_rate : float;
  fault_kinds : Net.Fault.kind list;
  flap_rate : float;
  down : string list;             (** permanently dead logs (by name) *)
  page_cap : int;
  policy : Net.Policy.t;
  rate_per_sec : float;
  burst : float;
  sth_every : int;                (** pages between mid-window STH tripwires *)
  breaker_threshold : int;
  breaker_cooldown : float;       (** virtual seconds before a half-open probe *)
  max_trips : int;                (** breaker trips before the log is abandoned *)
  equivocate : (string * int * int) list;
      (** (log name, at_request, leaf to flip): chaos hook for split views *)
}

val default_cfg : cfg
(** 16 logs, clean transport, page cap 64, default policy, 200 req/s
    bucket, STH tripwire every 8 pages, 30 s breaker cooldown, 3-trip
    abandonment. *)

val log_name : int -> string
(** ["log-00"], ["log-01"], ... *)

type item =
  | Got of int * Dataset.entry
      (** (corpus index, entry rebuilt from the fetched DER) *)
  | Undecodable of int * string * Faults.Error.t
      (** (corpus index, DER, error) — undecodable bytes or
          integrity-flagged provenance; routed to quarantine *)

val item_index : item -> int

type coverage = {
  log : string;
  expected : int;
  delivered : int;
  quarantined : int;
  spans : (int * int) list;  (** inclusive corpus-index ranges covered *)
  page_gaps : int;
  abandoned : string option;
  split_view : bool;
  requests : int;
  retries : int;
}

val coverage_complete : coverage -> bool

type session = {
  s_raw : (int * string) list;
  s_quar : (int * string * Faults.Error.t) list;
  s_cov : coverage;
  s_interrupted : bool;
}

val fetch_log :
  ?ckpt_file:string ->
  ?resume:bool ->
  ?stop_after_pages:int ->
  cfg:cfg ->
  scale:int ->
  seed:int ->
  name:string ->
  present:int array ->
  transport:Net.Transport.t ->
  bucket:Net.Bucket.t ->
  unit ->
  session
(** One log session.  [present.(tree_index)] is the corpus index an
    entry maps to ([-1] = skip, e.g. a precertificate).
    [stop_after_pages] interrupts after that many pages this session
    (checkpoint saved) — the resume-after-kill test hook. *)

val cursor_file : string -> int -> string
(** [cursor_file base k] is [base.fetch<k>] — the per-log checkpoint
    path used by {!corpus} under a [--checkpoint] base path. *)

val corpus :
  ?scale:int ->
  seed:int ->
  ?mutator:Faults.Mutator.plan ->
  ?drop:bool ->
  ?checkpoint:string ->
  ?resume:bool ->
  ?stop_after_pages:int ->
  ?jobs:int ->
  cfg ->
  item list * coverage list
(** Partition the corpus across [cfg.logs] simulated logs (contiguous
    index ranges), populate each log (the corruption [mutator] and
    [drop] compose exactly as in the generate source), fetch every log
    over its own clock/transport/bucket, and join the streams in log
    order — items arrive globally ascending by corpus index.  [jobs]
    fetches logs on parallel domains; results are independent of it. *)

val prewarm : unit -> unit
(** Force every lazy handle the fetch path touches.  Called internally
    by {!corpus} before spawning; exposed for direct {!fetch_log}
    users. *)

(** {2 Long-lived feeds (the monitor daemon)}

    A feed keeps one log's whole fetch apparatus alive between polls:
    the populated log and its paged server, the per-log virtual clock,
    transport and token bucket, and the cursor file that carries the
    session state (trusted STH, pending window, cumulative deliveries)
    across polls {e and} process restarts.  The server starts with
    nothing published; the driver grows the published head with
    {!feed_publish} and each {!poll} runs an ordinary {!fetch_log}
    session against it — STH refresh, consistency verification against
    the trusted head, split-view quarantine and breaker behaviour all
    identical to a one-shot fetch.

    Restart protocol: the trusted STH in the cursor outlives the
    in-memory server, so after recreating feeds the driver must
    republish each log to at least {!feed_trusted} before polling —
    a smaller published head reads as a shrinking tree, which is
    (correctly) treated as a split view. *)

type feed

val feeds :
  ?mutator:Faults.Mutator.plan ->
  ?drop:bool ->
  checkpoint:string ->
  scale:int ->
  seed:int ->
  cfg ->
  feed list
(** Partition the corpus across [cfg.logs] simulated logs exactly as
    {!corpus} does (same contiguous ranges, same content under the
    same [mutator]/[drop]/[seed]) and return one feed per log, each
    with nothing published yet.  [checkpoint] is the cursor base path
    ({!cursor_file} per log). *)

val feed_name : feed -> string
val feed_range : feed -> int * int
(** The contiguous corpus-index range [(lo, hi)) this log carries. *)

val feed_goal : feed -> int
(** Total entries this log will eventually publish. *)

val feed_published : feed -> int

val feed_publish : feed -> int -> unit
(** Raise the published head to [n] (clamped to {!feed_goal};
    never lowers). *)

val feed_trusted : feed -> int option
(** The tree size of the cursor's verified STH, when a matching cursor
    file exists — the minimum the driver must republish to before
    polling after a restart. *)

val poll : ?stop_after_pages:int -> feed -> session
(** Run one fetch session against the currently published head,
    resuming from (and saving) the feed's cursor.  [s_raw] is
    cumulative across polls — the driver filters by its own
    watermark. *)

val items_of_session : session -> item list
(** One session's delivered + quarantined streams merged back into a
    single ascending item stream (delivered DER parsed into entries,
    unparseable or integrity-flagged bytes as {!Undecodable}). *)
