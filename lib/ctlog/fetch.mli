(** Resumable paged CT-log fetch over the simulated transport.

    One session per log: trust-on-first-use STH, every refreshed STH
    verified against the previously trusted (and checkpointed) one via
    {!Merkle.verify_consistency}; entries are buffered unverified and
    delivered only once the running leaf tree reproduces a verified
    root.  Split views quarantine the unverified range as
    [Faults.Error.Integrity] and abandon the log; persistent transport
    failure trips the per-log breaker and abandons with explicit
    degraded coverage instead of aborting the run.

    Determinism: per-log virtual clock and token bucket, pure fault
    sampling, and contiguous per-log corpus ranges joined in log order
    — a completed fetch is byte-identical across reruns and [--jobs]
    values at the same seeds. *)

type cfg = {
  logs : int;                     (** corpus is partitioned across this many logs *)
  net_seed : int option;          (** fault-plan seed; [None] derives from corpus seed *)
  fault_rate : float;
  fault_kinds : Net.Fault.kind list;
  flap_rate : float;
  down : string list;             (** permanently dead logs (by name) *)
  page_cap : int;
  policy : Net.Policy.t;
  rate_per_sec : float;
  burst : float;
  sth_every : int;                (** pages between mid-window STH tripwires *)
  breaker_threshold : int;
  breaker_cooldown : float;       (** virtual seconds before a half-open probe *)
  max_trips : int;                (** breaker trips before the log is abandoned *)
  equivocate : (string * int * int) list;
      (** (log name, at_request, leaf to flip): chaos hook for split views *)
}

val default_cfg : cfg
(** 16 logs, clean transport, page cap 64, default policy, 200 req/s
    bucket, STH tripwire every 8 pages, 30 s breaker cooldown, 3-trip
    abandonment. *)

val log_name : int -> string
(** ["log-00"], ["log-01"], ... *)

type item =
  | Got of int * Dataset.entry
      (** (corpus index, entry rebuilt from the fetched DER) *)
  | Undecodable of int * string * Faults.Error.t
      (** (corpus index, DER, error) — undecodable bytes or
          integrity-flagged provenance; routed to quarantine *)

val item_index : item -> int

type coverage = {
  log : string;
  expected : int;
  delivered : int;
  quarantined : int;
  spans : (int * int) list;  (** inclusive corpus-index ranges covered *)
  page_gaps : int;
  abandoned : string option;
  split_view : bool;
  requests : int;
  retries : int;
}

val coverage_complete : coverage -> bool

type session = {
  s_raw : (int * string) list;
  s_quar : (int * string * Faults.Error.t) list;
  s_cov : coverage;
  s_interrupted : bool;
}

val fetch_log :
  ?ckpt_file:string ->
  ?resume:bool ->
  ?stop_after_pages:int ->
  cfg:cfg ->
  scale:int ->
  seed:int ->
  name:string ->
  present:int array ->
  transport:Net.Transport.t ->
  bucket:Net.Bucket.t ->
  unit ->
  session
(** One log session.  [present.(tree_index)] is the corpus index an
    entry maps to ([-1] = skip, e.g. a precertificate).
    [stop_after_pages] interrupts after that many pages this session
    (checkpoint saved) — the resume-after-kill test hook. *)

val cursor_file : string -> int -> string
(** [cursor_file base k] is [base.fetch<k>] — the per-log checkpoint
    path used by {!corpus} under a [--checkpoint] base path. *)

val corpus :
  ?scale:int ->
  seed:int ->
  ?mutator:Faults.Mutator.plan ->
  ?drop:bool ->
  ?checkpoint:string ->
  ?resume:bool ->
  ?stop_after_pages:int ->
  ?jobs:int ->
  cfg ->
  item list * coverage list
(** Partition the corpus across [cfg.logs] simulated logs (contiguous
    index ranges), populate each log (the corruption [mutator] and
    [drop] compose exactly as in the generate source), fetch every log
    over its own clock/transport/bucket, and join the streams in log
    order — items arrive globally ascending by corpus index.  [jobs]
    fetches logs on parallel domains; results are independent of it. *)

val prewarm : unit -> unit
(** Force every lazy handle the fetch path touches.  Called internally
    by {!corpus} before spawning; exposed for direct {!fetch_log}
    users. *)
