(* Line-based wire format shared by Ctlog.Server and Ctlog.Fetch.

   A body is newline-separated lines followed by a trailing integrity
   line ["end <sha256-hex of everything before it>"].  The checksum is
   what lets the fetch client distinguish a torn page (transport
   truncation / bit corruption — retryable) from well-formed data whose
   *content* is bad (a corrupt DER — quarantinable). *)

let to_hex s =
  let b = Buffer.create (2 * String.length s) in
  String.iter (fun c -> Buffer.add_string b (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents b

let of_hex s =
  let n = String.length s in
  if n mod 2 <> 0 then None
  else begin
    let nib c =
      match c with
      | '0' .. '9' -> Some (Char.code c - Char.code '0')
      | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
      | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
      | _ -> None
    in
    let b = Bytes.create (n / 2) in
    let ok = ref true in
    for i = 0 to (n / 2) - 1 do
      match (nib s.[2 * i], nib s.[(2 * i) + 1]) with
      | Some hi, Some lo -> Bytes.set b i (Char.chr ((hi lsl 4) lor lo))
      | _ -> ok := false
    done;
    if !ok then Some (Bytes.to_string b) else None
  end

let seal lines =
  let payload = String.concat "\n" lines ^ "\n" in
  payload ^ "end " ^ Ucrypto.Sha256.hex payload ^ "\n"

(* Validate the checksum and return the payload lines; [None] for a
   torn body. *)
let open_ body =
  match String.rindex_opt body '\n' with
  | None -> None
  | Some last ->
      (* The final line is "end <hex>\n"; find its start. *)
      let body = String.sub body 0 last in
      let start =
        match String.rindex_opt body '\n' with Some i -> i + 1 | None -> 0
      in
      let trailer = String.sub body start (String.length body - start) in
      let payload = String.sub body 0 start in
      if String.length trailer >= 4 && String.sub trailer 0 4 = "end " then begin
        let sum = String.sub trailer 4 (String.length trailer - 4) in
        if String.equal sum (Ucrypto.Sha256.hex payload) then
          Some
            (String.split_on_char '\n' payload
            |> List.filter (fun l -> l <> ""))
        else None
      end
      else None

let valid body = open_ body <> None
