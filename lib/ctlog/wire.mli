(** Line-based wire format shared by {!Server} and {!Fetch}: payload
    lines sealed with a trailing ["end <sha256-hex>"] integrity line.
    The checksum is what separates torn pages (transport truncation /
    bit flips — retryable) from well-formed bodies carrying bad content
    (corrupt DER — quarantinable). *)

val to_hex : string -> string
val of_hex : string -> string option

val seal : string list -> string
(** Join the lines and append the integrity trailer. *)

val open_ : string -> string list option
(** Validate the trailer; [Some lines] (payload only) or [None] for a
    torn body. *)

val valid : string -> bool
