type trust = Public | Limited | Untrusted

let trust_name = function
  | Public -> "public"
  | Limited -> "limited"
  | Untrusted -> "untrusted"

type issuer = {
  org : string;
  region : string;
  trust_now : trust;
  trust_at_issuance : trust;
  volume : float;
  nc_rate : float;
  nc_decay : float;
  idn_share : float;
  years : int * int * float;
  flaw_mix : (Flaws.t * float) list;
  aggregate : bool;
  keypair : X509.Certificate.keypair;
}

let mk ~org ~region ~trust_now ?trust_at_issuance ~volume ~nc_rate ?(nc_decay = 1.0)
    ~idn_share ~years ~flaw_mix ?(aggregate = false) () =
  {
    org;
    region;
    trust_now;
    trust_at_issuance =
      (match trust_at_issuance with Some t -> t | None -> trust_now);
    volume;
    nc_rate;
    nc_decay;
    idn_share;
    years;
    flaw_mix;
    aggregate;
    keypair = X509.Certificate.mock_keypair ~signer:true ~seed:("issuer:" ^ org) ();
  }

(* Shorthand flaw mixes. *)
let idn_flaws =
  [ (Flaws.Unpermitted_alabel, 0.55); (Flaws.Malformed_alabel, 0.32);
    (Flaws.Nonnfc_alabel, 0.05); (Flaws.Bad_dns_char, 0.08) ]

let mixed_flaws =
  [ (Flaws.Explicit_text_printable, 0.45); (Flaws.Explicit_text_bad_bytes, 0.05);
    (Flaws.Cn_not_in_san, 0.21);
    (Flaws.Deprecated_encoding, 0.11); (Flaws.Unicode_dnsname, 0.05);
    (Flaws.Invisible_space, 0.03); (Flaws.Trailing_whitespace, 0.03);
    (Flaws.Leading_whitespace, 0.02); (Flaws.Country_fullname, 0.02);
    (Flaws.Duplicate_cn, 0.015); (Flaws.Uri_in_san, 0.005);
    (Flaws.Email_unicode, 0.02); (Flaws.Crldp_ctrl, 0.01) ]

(* The calibrated issuer population; volumes in thousands of Unicerts at
   paper scale (34.8M total).  See DESIGN.md §4 for the targets. *)
let issuers =
  [
    mk ~org:"Let's Encrypt" ~region:"US" ~trust_now:Public ~volume:25100.0
      ~nc_rate:0.0006 ~idn_share:1.0 ~years:(2015, 2025, 1.40) ~flaw_mix:idn_flaws ();
    mk ~org:"COMODO CA Limited" ~region:"GB" ~trust_now:Untrusted
      ~trust_at_issuance:Public ~volume:4800.0 ~nc_rate:0.0025 ~idn_share:0.85
      ~years:(2013, 2018, 1.25) ~flaw_mix:mixed_flaws ();
    mk ~org:"cPanel, Inc." ~region:"US" ~trust_now:Public ~volume:1300.0 ~nc_rate:0.004
      ~nc_decay:0.85 ~idn_share:0.95 ~years:(2016, 2025, 1.25) ~flaw_mix:idn_flaws ();
    mk ~org:"Sectigo Limited" ~region:"GB" ~trust_now:Public ~volume:800.0
      ~nc_rate:0.007 ~nc_decay:0.85 ~idn_share:0.85 ~years:(2018, 2025, 1.25)
      ~flaw_mix:(idn_flaws @ [ (Flaws.Explicit_text_printable, 0.2) ]) ();
    mk ~org:"DigiCert Inc" ~region:"US" ~trust_now:Public ~volume:508.0 ~nc_rate:0.14
      ~nc_decay:0.76 ~idn_share:0.40 ~years:(2013, 2025, 1.10)
      ~flaw_mix:
        [ (Flaws.Explicit_text_printable, 0.50); (Flaws.Explicit_text_bad_bytes, 0.06);
          (Flaws.Cn_not_in_san, 0.29); (Flaws.Deprecated_encoding, 0.12);
          (Flaws.Explicit_text_too_long, 0.03) ]
      ();
    mk ~org:"ZeroSSL" ~region:"AT" ~trust_now:Public ~volume:444.0 ~nc_rate:0.035
      ~nc_decay:0.9 ~idn_share:0.95 ~years:(2020, 2025, 1.45) ~flaw_mix:idn_flaws ();
    mk ~org:"Cloudflare, Inc." ~region:"US" ~trust_now:Public ~volume:300.0
      ~nc_rate:0.0004 ~idn_share:1.0 ~years:(2014, 2025, 1.25) ~flaw_mix:idn_flaws ();
    mk ~org:"Amazon" ~region:"US" ~trust_now:Public ~volume:250.0 ~nc_rate:0.0005
      ~idn_share:1.0 ~years:(2015, 2025, 1.30) ~flaw_mix:idn_flaws ();
    mk ~org:"GEANT Vereniging" ~region:"NL" ~trust_now:Public ~volume:215.0
      ~nc_rate:0.035 ~nc_decay:0.78 ~idn_share:0.5 ~years:(2016, 2025, 1.15)
      ~flaw_mix:mixed_flaws ();
    mk ~org:"GoDaddy.com, Inc." ~region:"US" ~trust_now:Public ~volume:180.0
      ~nc_rate:0.035 ~nc_decay:0.78 ~idn_share:0.7 ~years:(2013, 2025, 1.10)
      ~flaw_mix:mixed_flaws ();
    mk ~org:"GlobalSign nv-sa" ~region:"BE" ~trust_now:Public ~volume:120.0
      ~nc_rate:0.025 ~nc_decay:0.78 ~idn_share:0.5 ~years:(2013, 2025, 1.08)
      ~flaw_mix:mixed_flaws ();
    mk ~org:"Certum / Asseco" ~region:"PL" ~trust_now:Public ~volume:90.0 ~nc_rate:0.06
      ~nc_decay:0.78
      ~idn_share:0.45 ~years:(2013, 2025, 1.08)
      ~flaw_mix:
        (mixed_flaws
        @ [ (Flaws.Country_fullname, 0.05); (Flaws.Trailing_whitespace, 0.05) ])
      ();
    mk ~org:"T-Systems / Telekom Security" ~region:"DE" ~trust_now:Public ~volume:60.0
      ~nc_rate:0.08 ~nc_decay:0.78 ~idn_share:0.35 ~years:(2013, 2025, 1.05)
      ~flaw_mix:(mixed_flaws @ [ (Flaws.Utf8_bad_bytes, 0.10) ]) ();
    mk ~org:"DOMENY.PL sp. z o.o." ~region:"PL" ~trust_now:Limited ~volume:49.0
      ~nc_rate:0.08 ~idn_share:0.6 ~years:(2015, 2023, 1.10)
      ~flaw_mix:
        [ (Flaws.Invisible_space, 0.3); (Flaws.Country_fullname, 0.2);
          (Flaws.Cn_not_in_san, 0.3); (Flaws.Explicit_text_printable, 0.2) ]
      ();
    mk ~org:"Dreamcommerce S.A." ~region:"PL" ~trust_now:Limited ~volume:38.6
      ~nc_rate:0.4483 ~idn_share:0.4 ~years:(2015, 2021, 1.05)
      ~flaw_mix:
        [ (Flaws.Cn_not_in_san, 0.52); (Flaws.Explicit_text_printable, 0.43);
          (Flaws.Leading_whitespace, 0.05) ]
      ();
    mk ~org:"Symantec Corporation" ~region:"US" ~trust_now:Untrusted
      ~trust_at_issuance:Public ~volume:35.2 ~nc_rate:0.5147 ~idn_share:0.15
      ~years:(2013, 2017, 0.95)
      ~flaw_mix:
        [ (Flaws.Cn_not_in_san, 0.38); (Flaws.Interval_nul_subject, 0.18);
          (Flaws.Explicit_text_ia5, 0.14); (Flaws.Explicit_text_printable, 0.15);
          (Flaws.Del_in_dn, 0.05); (Flaws.Deprecated_encoding, 0.10) ]
      ();
    mk ~org:"\xC4\x8Cesk\xC3\xA1 po\xC5\xA1ta, s.p." ~region:"CZ" ~trust_now:Untrusted
      ~volume:23.8 ~nc_rate:0.9639 ~idn_share:0.05 ~years:(2013, 2018, 1.00)
      ~flaw_mix:
        [ (Flaws.Deprecated_encoding, 0.42); (Flaws.Cn_not_in_san, 0.18);
          (Flaws.Explicit_text_printable, 0.25); (Flaws.Utf8_bad_bytes, 0.10);
          (Flaws.Control_char_in_dn, 0.05) ]
      ();
    mk ~org:"StartCom Ltd." ~region:"IL" ~trust_now:Untrusted
      ~trust_at_issuance:Public ~volume:19.4 ~nc_rate:0.7297 ~idn_share:0.25
      ~years:(2013, 2017, 1.00)
      ~flaw_mix:
        [ (Flaws.Explicit_text_ia5, 0.30); (Flaws.Cn_not_in_san, 0.30);
          (Flaws.Explicit_text_printable, 0.20); (Flaws.Utf8_bad_bytes, 0.10);
          (Flaws.Control_char_in_dn, 0.10) ]
      ();
    mk ~org:"ACCV" ~region:"ES" ~trust_now:Limited ~volume:20.0 ~nc_rate:0.14
      ~idn_share:0.2 ~years:(2013, 2024, 1.02)
      ~flaw_mix:
        [ (Flaws.Duplicate_cn, 0.3); (Flaws.Deprecated_encoding, 0.4);
          (Flaws.Explicit_text_printable, 0.3) ]
      ();
    mk ~org:"Netlock Kft." ~region:"HU" ~trust_now:Limited ~volume:20.0 ~nc_rate:0.12
      ~idn_share:0.3 ~years:(2013, 2024, 1.02) ~flaw_mix:mixed_flaws ();
    mk ~org:"Government of Korea" ~region:"KR" ~trust_now:Untrusted ~volume:11.9
      ~nc_rate:0.8733 ~idn_share:0.05 ~years:(2013, 2020, 1.00)
      ~flaw_mix:
        [ (Flaws.Deprecated_encoding, 0.50); (Flaws.Duplicate_cn, 0.15);
          (Flaws.Explicit_text_printable, 0.20); (Flaws.Bmp_odd_bytes, 0.05);
          (Flaws.Cn_not_in_san, 0.10) ]
      ();
    mk ~org:"VeriSign, Inc." ~region:"US" ~trust_now:Public ~volume:12.7
      ~nc_rate:0.5912 ~idn_share:0.10 ~years:(2013, 2015, 0.90)
      ~flaw_mix:
        [ (Flaws.Interval_nul_subject, 0.25); (Flaws.Cn_not_in_san, 0.35);
          (Flaws.Deprecated_encoding, 0.25); (Flaws.Explicit_text_printable, 0.15) ]
      ();
    mk ~org:"Thawte Consulting" ~region:"ZA" ~trust_now:Untrusted
      ~trust_at_issuance:Public ~volume:8.0 ~nc_rate:0.50 ~idn_share:0.10
      ~years:(2013, 2016, 0.95)
      ~flaw_mix:[ (Flaws.Interval_nul_subject, 0.6); (Flaws.Cn_not_in_san, 0.4) ] ();
    mk ~org:"IPS CA" ~region:"ES" ~trust_now:Untrusted ~volume:2.5 ~nc_rate:0.60
      ~idn_share:0.05 ~years:(2013, 2015, 0.90)
      ~flaw_mix:[ (Flaws.Interval_nul_subject, 0.85); (Flaws.Del_in_dn, 0.15) ] ();
    mk ~org:"Government / regional CAs" ~region:"various" ~trust_now:Limited
      ~volume:1500.0 ~nc_rate:0.075 ~nc_decay:0.80 ~idn_share:0.15
      ~years:(2013, 2025, 1.05)
      ~flaw_mix:
        [ (Flaws.Deprecated_encoding, 0.30); (Flaws.Explicit_text_printable, 0.30);
          (Flaws.Cn_not_in_san, 0.25); (Flaws.Explicit_text_bmp, 0.05);
          (Flaws.Invisible_space, 0.05); (Flaws.Wrong_time_form, 0.05) ]
      ~aggregate:true ();
    mk ~org:"Other public CAs" ~region:"various" ~trust_now:Public ~volume:400.0
      ~nc_rate:0.95 ~nc_decay:0.66 ~idn_share:0.45 ~years:(2013, 2025, 1.10)
      ~flaw_mix:mixed_flaws ~aggregate:true ();
    mk ~org:"Other regional CAs" ~region:"various" ~trust_now:Limited ~volume:800.0
      ~nc_rate:0.010 ~nc_decay:0.85 ~idn_share:0.30 ~years:(2013, 2024, 1.02)
      ~flaw_mix:mixed_flaws ~aggregate:true ();
  ]

type entry = {
  cert : X509.Certificate.t;
  issued : Asn1.Time.t;
  issuer : issuer;
  flaws : Flaws.t list;
  is_idn : bool;
}

let default_scale = 60_000
let analysis_date = Asn1.Time.make 2025 4 30

let issuer_dn_uncached issuer =
  X509.Dn.of_list
    [ (X509.Attr.Country_name, if String.length issuer.region = 2 then issuer.region else "US");
      (X509.Attr.Organization_name, issuer.org);
      (X509.Attr.Common_name, issuer.org ^ " TLS CA") ]

(* Issuer DNs are pure functions of the (fixed) issuer table; built
   eagerly at module init so the per-certificate path only does an
   assoc lookup, and the list stays read-only under [Par] domains. *)
let issuer_dns = List.map (fun i -> (i.org, issuer_dn_uncached i)) issuers

let issuer_dn issuer =
  match List.assoc_opt issuer.org issuer_dns with
  | Some dn -> dn
  | None -> issuer_dn_uncached issuer

let sample_year g issuer =
  let y0, y1, growth = issuer.years in
  let weights =
    List.init (y1 - y0 + 1) (fun i -> (y0 + i, growth ** float_of_int i))
  in
  Ucrypto.Prng.weighted g weights

let sample_issued g issuer =
  let year = sample_year g issuer in
  let month = 1 + Ucrypto.Prng.int g 12 in
  let day = 1 + Ucrypto.Prng.int g (Asn1.Time.days_in_month year month) in
  Asn1.Time.make ~hour:(Ucrypto.Prng.int g 24) year month day

(* Validity periods: automated/IDN issuance follows the 90-day trend;
   noncompliant legacy certificates skew long (Figure 3). *)
let sample_validity g ~is_idn ~noncompliant =
  if noncompliant then begin
    let r = Ucrypto.Prng.float g in
    if r < 0.20 then 700 + Ucrypto.Prng.int g 400
    else if r < 0.50 then 365 + Ucrypto.Prng.int g 335
    else 90 + Ucrypto.Prng.int g 275
  end
  else if is_idn && Ucrypto.Prng.float g < 0.896 then 90
  else begin
    let r = Ucrypto.Prng.float g in
    if r < 0.5 then 90
    else if r < 0.893 then 365 + Ucrypto.Prng.int g 33
    else 398 + Ucrypto.Prng.int g 200
  end

let base_spec g ~is_idn : Flaws.spec =
  if is_idn then begin
    let domain = Subjects.random_idn_domain g in
    {
      subject = [ X509.Dn.atv X509.Attr.Common_name domain ];
      san =
        (X509.General_name.Dns_name domain
        ::
        (if Ucrypto.Prng.float g < 0.4 then
           [ X509.General_name.Dns_name ("www." ^ domain) ]
         else []));
      policies = [];
      crldp = [];
      not_before_form = None;
    }
  end
  else begin
    let org, country =
      if Ucrypto.Prng.float g < 0.7 then Ucrypto.Prng.pick g Subjects.unicode_orgs
      else Ucrypto.Prng.pick g Subjects.ascii_orgs
    in
    let domain = Subjects.random_ascii_domain g in
    {
      subject =
        [ X509.Dn.atv X509.Attr.Country_name country;
          X509.Dn.atv X509.Attr.Locality_name (Ucrypto.Prng.pick g Subjects.localities);
          X509.Dn.atv X509.Attr.Organization_name org;
          X509.Dn.atv X509.Attr.Common_name domain ];
      san = [ X509.General_name.Dns_name domain ];
      policies = [];
      crldp = [];
      not_before_form = None;
    }
  end

let sample_flaws g issuer =
  let first = Ucrypto.Prng.weighted g issuer.flaw_mix in
  if Ucrypto.Prng.float g < 0.15 then begin
    let second = Ucrypto.Prng.weighted g issuer.flaw_mix in
    if second = first then [ first ] else [ first; second ]
  end
  else [ first ]

(* Extensions whose payload never varies across certificates, built
   (and DER-encoded) exactly once at module init.  Extension values are
   immutable records, so sharing one across every certificate is safe
   — re-encoding the same AIA for each of 60k certs was measurable. *)
let ext_key_usage = X509.Extension.key_usage 0x05

let ext_aia =
  X509.Extension.authority_info_access
    [ (X509.Extension.Oids.ocsp, X509.General_name.Uri "http://ocsp.example-ca.test");
      (X509.Extension.Oids.ca_issuers,
       X509.General_name.Uri "http://certs.example-ca.test/ca.crt") ]

let ext_ian =
  X509.Extension.issuer_alt_name [ X509.General_name.Uri "http://www.example-ca.test" ]

let ext_sia =
  X509.Extension.subject_info_access
    [ (X509.Extension.Oids.ca_issuers,
       X509.General_name.Uri "http://repository.example-ca.test") ]

let build_cert g issuer (spec : Flaws.spec) ~issued ~validity ~serial =
  let extensions =
    [ X509.Extension.subject_alt_name spec.Flaws.san; ext_key_usage; ext_aia ]
    @ (if spec.Flaws.policies = [] then []
       else [ X509.Extension.certificate_policies spec.Flaws.policies ])
    @ (if spec.Flaws.crldp = [] then []
       else [ X509.Extension.crl_distribution_points spec.Flaws.crldp ])
    (* A minority of issuers also populate IAN / SIA, so those fields
       appear in the Figure 4 field survey. *)
    @ (if Ucrypto.Prng.float g < 0.06 then [ ext_ian ] else [])
    @ if Ucrypto.Prng.float g < 0.03 then [ ext_sia ] else []
  in
  let leaf_key = X509.Certificate.mock_keypair ~seed:("leaf:" ^ serial) () in
  let tbs =
    X509.Certificate.make_tbs ~serial
      ~issuer:(issuer_dn issuer)
      ~subject:(X509.Dn.single spec.Flaws.subject)
      ~not_before:issued
      ~not_after:(Asn1.Time.add_days issued validity)
      ?not_before_form:spec.Flaws.not_before_form
      ~spki:(X509.Certificate.keypair_spki leaf_key)
      ~sig_alg:X509.Certificate.Oids.mock_signature ~extensions ()
  in
  X509.Certificate.sign issuer.keypair tbs

(* Era practices: defects that predate the rules now forbidding them
   (footnote-4 ablation).  They are invisible to effective-date-gated
   linting but surface when dates are ignored. *)
let era_flaws g spec ~is_idn ~year =
  if year >= 2018 then []
  else if is_idn then begin
    let flaw =
      Ucrypto.Prng.weighted g [ (Flaws.Nonnfc_alabel, 0.45); (Flaws.Malformed_alabel, 0.55) ]
    in
    (match flaw with
    | Flaws.Malformed_alabel ->
        (* An LDH-clean undecodable A-label: only the RFC 8399 lint
           (effective 2018) catches it. *)
        Flaws.set_primary_dns spec "xn--.example.com"
    | flaw -> Flaws.apply g spec flaw);
    [ flaw ]
  end
  else if year < 2015 then begin
    let flaw =
      Ucrypto.Prng.weighted g
        [ (Flaws.Del_in_dn, 0.3); (Flaws.Leading_whitespace, 0.2);
          (Flaws.Trailing_whitespace, 0.25); (Flaws.Invisible_space, 0.15);
          (Flaws.Replacement_char, 0.1) ]
    in
    Flaws.apply g spec flaw;
    [ flaw ]
  end
  else []

let generate_entry g issuer =
  let is_idn = Ucrypto.Prng.float g < issuer.idn_share in
  let issued = sample_issued g issuer in
  let y0, _, _ = issuer.years in
  let year_rate =
    issuer.nc_rate *. (issuer.nc_decay ** float_of_int (issued.Asn1.Time.year - y0))
  in
  let noncompliant = Ucrypto.Prng.float g < year_rate in
  let spec = base_spec g ~is_idn in
  let flaws = if noncompliant then sample_flaws g issuer else [] in
  List.iter (Flaws.apply g spec) flaws;
  let flaws =
    if flaws = [] && Ucrypto.Prng.float g < 0.35 then
      era_flaws g spec ~is_idn ~year:issued.Asn1.Time.year
    else flaws
  in
  let validity = sample_validity g ~is_idn ~noncompliant in
  (* Positive, minimally-encoded serial: clear the sign bit and avoid a
     leading zero octet. *)
  let serial =
    let raw = Ucrypto.Prng.bytes g 10 in
    String.init 10 (fun i ->
        if i = 0 then Char.chr ((Char.code raw.[0] land 0x7F) lor 0x01)
        else raw.[i])
  in
  let cert = build_cert g issuer spec ~issued ~validity ~serial in
  { cert; issued; issuer; flaws; is_idn }

(* Telemetry handles, resolved once: the per-entry path below must not
   pay a registry lookup per certificate. *)
let obs_certs =
  lazy
    (Obs.Registry.counter
       ~help:"Certificates streamed through the corpus pipeline"
       "unicert_pipeline_certs_total")

let obs_idn =
  lazy
    (Obs.Registry.counter ~help:"Generated certificates that are IDNCerts"
       "unicert_dataset_idn_total")

let obs_flaws =
  lazy
    (Obs.Registry.labeled_counter ~label:"flaw"
       ~help:"Defects injected by the corpus generator"
       "unicert_dataset_flaws_injected_total")

type delivery =
  | Entry of entry
  | Corrupt of { der : string; kind : Faults.Mutator.kind; error : Faults.Error.t }

let obs_injected =
  lazy
    (Obs.Registry.labeled_counter ~label:"kind"
       ~help:"Corpus certificates corrupted by the fault mutator"
       "unicert_fault_injected_total")

(* Corrupt until the result really fails to parse (a bit flip can land
   in a don't-care byte).  The typed exhaustion path is unreachable for
   realistic certificates — the last-resort half-truncation never
   parses — but if it ever fires we record it and deliver the clean
   entry rather than asserting. *)
let corrupt_der plan index der =
  let rejects bad =
    match X509.Certificate.parse bad with Error e -> Some e | Ok _ -> None
  in
  match Faults.Mutator.mutate_rejected plan ~index ~rejects der with
  | Ok (bad, kind, error) -> Some (bad, kind, error)
  | Error { Faults.Mutator.index; attempts } ->
      Faults.Error.observe
        (Faults.Error.Resource
           { stage = "mutate";
             detail =
               Printf.sprintf "index %d resisted %d corruption attempts" index
                 attempts });
      None

let issuer_weights =
  lazy
    (let total = List.fold_left (fun acc i -> acc +. i.volume) 0.0 issuers in
     List.map (fun i -> (i, i.volume /. total)) issuers)

(* Each corpus index draws from its own splitmix stream keyed by
   [(seed, index)], so an entry is a pure function of the pair: any
   contiguous sub-range of indices — a resume, a shard of a parallel
   run — regenerates byte-identical certificates without replaying the
   indices before it. *)
let generate_at ~seed index =
  let g = Ucrypto.Prng.of_pair seed index in
  let issuer = Ucrypto.Prng.weighted g (Lazy.force issuer_weights) in
  generate_entry g issuer

let issuer_by_org =
  lazy (List.map (fun i -> (i.org, i)) issuers)

let issuer_of_org org = List.assoc_opt org (Lazy.force issuer_by_org)

(* Rebuild an [entry] from bytes fetched off a log rather than from the
   in-process generator: recover the issuer record by the certificate's
   IssuerOrganizationName and re-derive the analysis inputs the
   pipeline reads ([issued], [is_idn]).  [flaws] stays empty — the
   linter rediscovers defects from the DER, which is all downstream
   analysis consumes. *)
let entry_of_cert (cert : X509.Certificate.t) =
  match
    X509.Dn.get_text cert.X509.Certificate.tbs.X509.Certificate.issuer
      X509.Attr.Organization_name
  with
  | [] ->
      Error
        (Faults.Error.Decode_error
           { offset = None; detail = "fetched entry: no issuer organizationName" })
  | org :: _ -> (
      match List.assoc_opt org (Lazy.force issuer_by_org) with
      | None ->
          Error
            (Faults.Error.Decode_error
               { offset = None;
                 detail =
                   Printf.sprintf "fetched entry: unknown issuer %S" org })
      | Some issuer ->
          let issued = fst cert.X509.Certificate.tbs.X509.Certificate.not_before in
          let is_idn =
            List.exists
              (fun d ->
                List.exists
                  (fun label ->
                    String.length label >= 4 && String.sub label 0 4 = "xn--")
                  (String.split_on_char '.' d))
              (X509.Certificate.san_dns_names cert)
          in
          Ok { cert; issued; issuer; flaws = []; is_idn })

let prewarm () =
  ignore (Lazy.force issuer_weights);
  ignore (Lazy.force issuer_by_org);
  ignore (Lazy.force obs_certs);
  ignore (Lazy.force obs_idn);
  ignore (Lazy.force obs_flaws);
  ignore (Lazy.force obs_injected)

(* The full streaming loop.  Corruption decisions never touch the
   entry's generator: the mutator derives all randomness from
   [(plan.seed, index)], so runs with and without faults generate
   byte-identical certificates.  [start]/[stop] bound the generated
   index range — entries outside it are neither generated nor counted,
   which is what makes checkpoint resume and range sharding cheap.
   [drop] delivers nothing for corrupted indices, producing the
   clean-subset reference run the fault-smoke A/B check compares
   against. *)
let iter_deliveries ?(scale = default_scale) ?(start = 0) ?stop ?mutator
    ?(drop = false) ~seed f =
  let stop = match stop with Some s -> s | None -> scale in
  let certs = Lazy.force obs_certs in
  let idn = Lazy.force obs_idn in
  let flaws = Lazy.force obs_flaws in
  let injected = match mutator with Some _ -> Some (Lazy.force obs_injected) | None -> None in
  let progress = Obs.Progress.create ~total:(max 0 (stop - start)) ~label:"generate" () in
  for i = start to stop - 1 do
    let e = Obs.Span.with_ "generate" (fun () -> generate_at ~seed i) in
    Obs.Counter.inc certs;
    if e.is_idn then Obs.Counter.inc idn;
    List.iter
      (fun fl -> Obs.Counter.inc (Obs.Counter.Labeled.get flaws (Flaws.name fl)))
      e.flaws;
    Obs.Progress.tick progress;
    match mutator with
    | Some plan when Faults.Mutator.hits plan i ->
        if not drop then begin
          match corrupt_der plan i e.cert.X509.Certificate.der with
          | Some (der, kind, error) ->
              (match injected with
              | Some c ->
                  Obs.Counter.inc
                    (Obs.Counter.Labeled.get c (Faults.Mutator.kind_name kind))
              | None -> ());
              f i (Corrupt { der; kind; error })
          | None -> f i (Entry e)
        end
    | _ -> f i (Entry e)
  done;
  Obs.Progress.finish progress

let iter ?scale ~seed f =
  iter_deliveries ?scale ~seed (fun _ -> function
    | Entry e -> f e
    | Corrupt _ -> ())

let generate ?scale ~seed () =
  let out = ref [] in
  iter ?scale ~seed (fun e -> out := e :: !out);
  List.rev !out

(* Modelled after §4.1: most issuances run the full RFC 6962 flow
   (precert + final = two entries), and a fraction of precertificates
   never get their final certificate logged, pushing the precert share
   among entries above one half.  For a target share r, emitting an
   extra precert-only submission with probability p = (2r-1)/(1-r)
   yields share (1+p)/(2+p) = r. *)
let populate_log ?(scale = 200) ?(precert_rate = 0.547) ~seed log =
  let g = Ucrypto.Prng.create (seed lxor 0x5C7) in
  let extra_precert_prob =
    if precert_rate <= 0.5 then 0.0
    else ((2.0 *. precert_rate) -. 1.0) /. (1.0 -. precert_rate)
  in
  let precerts = ref 0 and finals = ref 0 in
  iter ~scale ~seed (fun e ->
      let issued =
        Submission.issue_with_sct log e.issuer.keypair e.cert.X509.Certificate.tbs
      in
      ignore issued;
      incr precerts;
      incr finals;
      if Ucrypto.Prng.float g < extra_precert_prob then begin
        (* An abandoned precertificate: logged, never followed up. *)
        let poisoned =
          { e.cert.X509.Certificate.tbs with
            X509.Certificate.extensions =
              e.cert.X509.Certificate.tbs.X509.Certificate.extensions
              @ [ X509.Extension.ct_poison ] }
        in
        let precert = X509.Certificate.sign e.issuer.keypair poisoned in
        ignore (Log.add_chain log ~precert:true precert.X509.Certificate.der);
        incr precerts
      end);
  (!precerts, !finals)
