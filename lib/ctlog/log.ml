type sct = { log_id : string; timestamp : int; signature : string }
type entry = { index : int; der : string; precert : bool }

type t = {
  id : string;
  secret : string;
  mac : Ucrypto.Sha256.hmac_key;  (* precomputed midstates for [secret] *)
  tree : Merkle.t;
  mutable stored : entry list;  (* newest first *)
}

let create ~name =
  let secret = Ucrypto.Sha256.digest ("ct-log-secret:" ^ name) in
  {
    id = Ucrypto.Sha256.digest ("ct-log:" ^ name);
    secret;
    mac = Ucrypto.Sha256.hmac_init secret;
    tree = Merkle.create ();
    stored = [];
  }

let log_id t = t.id

let leaf_bytes ~precert der = (if precert then "\x01" else "\x00") ^ der

let add_chain t ?(precert = false) der =
  let leaf = leaf_bytes ~precert der in
  let index = Merkle.append t.tree leaf in
  t.stored <- { index; der; precert } :: t.stored;
  {
    log_id = t.id;
    timestamp = index;
    signature = Ucrypto.Sha256.hmac_with t.mac (string_of_int index ^ leaf);
  }

let verify_sct t ~der sct =
  String.equal sct.log_id t.id
  &&
  let precert_leaf = leaf_bytes ~precert:true der in
  let cert_leaf = leaf_bytes ~precert:false der in
  let check leaf =
    String.equal sct.signature
      (Ucrypto.Sha256.hmac_with t.mac (string_of_int sct.timestamp ^ leaf))
  in
  check precert_leaf || check cert_leaf

let tree t = t.tree
let entries t = List.rev t.stored
let size t = Merkle.size t.tree
let tree_head t = Merkle.root t.tree
let prove_inclusion t i = Merkle.inclusion_proof t.tree i
let prove_consistency t m = Merkle.consistency_proof t.tree m
let get t i = List.find_opt (fun e -> e.index = i) (entries t)
