(** RFC 6962 Merkle hash trees: tree heads, inclusion proofs, and
    consistency proofs over an append-only leaf sequence. *)

type t
(** An append-only Merkle tree over byte-string leaves. *)

val create : unit -> t
val append : t -> string -> int
(** [append t leaf] adds a leaf and returns its index. *)

val size : t -> int

val leaf_hash : string -> string
(** [leaf_hash data] is [SHA-256(0x00 || data)]. *)

val node_hash : string -> string -> string
(** [node_hash l r] is [SHA-256(0x01 || l || r)]. *)

val root : t -> string
(** [root t] is the Merkle tree head (the hash of the empty string for
    an empty tree). *)

val root_of_range : t -> int -> string
(** [root_of_range t n] is the tree head over the first [n] leaves. *)

val inclusion_proof : t -> int -> string list
(** [inclusion_proof t i] is the audit path for leaf [i] against the
    current tree head (RFC 6962 §2.1.1). *)

val verify_inclusion :
  leaf:string -> index:int -> size:int -> proof:string list -> root:string -> bool

val consistency_proof : t -> int -> string list
(** [consistency_proof t m] proves the first [m] leaves are a prefix of
    the current tree (RFC 6962 §2.1.2). *)

val consistency_proof_range : t -> int -> int -> string list
(** [consistency_proof_range t m n] proves size [m] is a prefix of size
    [n] ([m <= n <= size t]) — what a log answers for
    get-consistency(first=m, second=n) after the tree has grown
    past [n]. *)

val verify_consistency :
  old_size:int -> old_root:string -> new_size:int -> new_root:string ->
  proof:string list -> bool
