(* Resumable paged CT-log fetch over the simulated transport.

   One session per log: trust-on-first-use STH, then every refreshed STH
   is verified against the previously trusted one — equal sizes must
   have equal roots, growth must come with a consistency proof that
   passes [Merkle.verify_consistency].  Entries are buffered unverified
   ([pend]) and only delivered once the window closes and the running
   leaf tree reproduces the verified STH root; a split view quarantines
   the whole unverified range as [Faults.Error.Integrity] and abandons
   the log.  Request failures skip the page (a coverage gap) and feed
   the per-log circuit breaker: past a trip budget the log is abandoned
   and the run reports degraded coverage instead of aborting.

   Everything is deterministic: per-log virtual clock, pure fault
   sampling, and a cursor checkpoint ([FILE.fetch<k>]) carrying the
   whole session state, so a resumed run produces byte-identical
   results to an uninterrupted one. *)

type cfg = {
  logs : int;
  net_seed : int option;  (* fault-plan seed; default derives from corpus seed *)
  fault_rate : float;
  fault_kinds : Net.Fault.kind list;
  flap_rate : float;
  down : string list;             (* permanently dead logs *)
  page_cap : int;                 (* server page size, and the skip unit *)
  policy : Net.Policy.t;
  rate_per_sec : float;           (* token bucket rate *)
  burst : float;
  sth_every : int;                (* pages between mid-window STH tripwires *)
  breaker_threshold : int;
  breaker_cooldown : float;       (* virtual seconds before a half-open probe *)
  max_trips : int;                (* breaker trips before the log is abandoned *)
  equivocate : (string * int * int) list;
      (* (log name, at_request, leaf to flip) — test/chaos hook *)
}

let default_cfg =
  {
    logs = 16;
    net_seed = None;
    fault_rate = 0.0;
    fault_kinds = Net.Fault.all_kinds;
    flap_rate = 0.0;
    down = [];
    page_cap = Server.default_page_cap;
    policy = Net.Policy.default;
    rate_per_sec = 200.0;
    burst = 20.0;
    sth_every = 8;
    breaker_threshold = Faults.Breaker.default_threshold;
    breaker_cooldown = 30.0;
    max_trips = 3;
    equivocate = [];
  }

let log_name k = Printf.sprintf "log-%02d" k

type item =
  | Got of int * Dataset.entry                   (* corpus index, entry *)
  | Undecodable of int * string * Faults.Error.t (* corpus index, DER, error *)

let item_index = function Got (i, _) -> i | Undecodable (i, _, _) -> i

type coverage = {
  log : string;
  expected : int;      (* entries this log held *)
  delivered : int;     (* fetched, verified and decoded *)
  quarantined : int;   (* fetched but undecodable or integrity-flagged *)
  spans : (int * int) list;  (* inclusive corpus-index ranges covered *)
  page_gaps : int;     (* pages skipped after request failure *)
  abandoned : string option;
  split_view : bool;
  requests : int;
  retries : int;
}

let coverage_complete c =
  c.abandoned = None && not c.split_view && c.page_gaps = 0
  && c.delivered + c.quarantined >= c.expected

(* --- cursor: the whole session state, checkpointable ------------------- *)

type cursor = {
  c_log : string;
  c_next : int;                        (* next tree index to fetch *)
  c_verified : (int * string) option;  (* trusted STH: size, root *)
  c_tree : Merkle.t;                   (* running leaf tree *)
  c_tree_ok : bool;                    (* false once a page gap broke it *)
  c_refresh : int;                     (* STH refreshes so far (fault keying) *)
  c_pend : (int * bool * string) list; (* unflushed: tree idx, precert, DER; newest first *)
  c_raw : (int * string) list;         (* delivered: corpus idx, DER; newest first *)
  c_quar : (int * string * Faults.Error.t) list;  (* newest first *)
  c_gaps : int;
  c_requests : int;
  c_retries : int;
}

let fresh_cursor name =
  {
    c_log = name;
    c_next = 0;
    c_verified = None;
    c_tree = Merkle.create ();
    c_tree_ok = true;
    c_refresh = 0;
    c_pend = [];
    c_raw = [];
    c_quar = [];
    c_gaps = 0;
    c_requests = 0;
    c_retries = 0;
  }

let cursor_file base k = base ^ ".fetch" ^ string_of_int k

(* --- telemetry --------------------------------------------------------- *)

let obs_pages =
  lazy
    (Obs.Registry.counter ~help:"get-entries pages fetched successfully"
       "unicert_fetch_pages_total")

let obs_entries =
  lazy
    (Obs.Registry.labeled_counter ~label:"log"
       ~help:"Log entries delivered by the fetch client"
       "unicert_fetch_entries_total")

let obs_sth =
  lazy
    (Obs.Registry.counter ~help:"STHs fetched and verified against the previous checkpoint"
       "unicert_fetch_sth_verified_total")

let obs_split =
  lazy
    (Obs.Registry.labeled_counter ~label:"log"
       ~help:"Split views detected (STH consistency or leaf-root mismatch)"
       "unicert_fetch_split_views_total")

let obs_abandoned =
  lazy
    (Obs.Registry.labeled_counter ~label:"log"
       ~help:"Logs abandoned before full coverage"
       "unicert_fetch_abandoned_total")

let obs_gaps =
  lazy
    (Obs.Registry.counter ~help:"Pages skipped after exhausting their retry budget"
       "unicert_fetch_page_gaps_total")

let prewarm () =
  Net.Transport.prewarm ();
  Net.Client.prewarm ();
  Faults.Breaker.prewarm ();
  Faults.Error.prewarm ();
  Dataset.prewarm ();
  ignore (Lazy.force obs_pages);
  ignore (Lazy.force obs_entries);
  ignore (Lazy.force obs_sth);
  ignore (Lazy.force obs_split);
  ignore (Lazy.force obs_abandoned);
  ignore (Lazy.force obs_gaps)

(* --- body parsing ------------------------------------------------------ *)

let parse_sth lines =
  match lines with
  | [ l ] -> (
      match String.split_on_char ' ' l with
      | [ "sth"; n; root ] -> (
          match (int_of_string_opt n, Wire.of_hex root) with
          | Some n, Some root when n >= 0 -> Some (n, root)
          | _ -> None)
      | _ -> None)
  | _ -> None

let parse_consistency lines =
  match lines with
  | header :: hashes -> (
      match String.split_on_char ' ' header with
      | [ "consistency"; _; _; k ] when int_of_string_opt k = Some (List.length hashes)
        ->
          let decoded = List.filter_map Wire.of_hex hashes in
          if List.length decoded = List.length hashes then Some decoded else None
      | _ -> None)
  | [] -> None

let parse_entries lines =
  match lines with
  | header :: rows -> (
      match String.split_on_char ' ' header with
      | [ "entries"; start; count ]
        when int_of_string_opt count = Some (List.length rows) -> (
          match int_of_string_opt start with
          | Some start when start >= 0 ->
              let decoded =
                List.filter_map
                  (fun row ->
                    match String.split_on_char ' ' row with
                    | [ "0"; der ] -> Option.map (fun d -> (false, d)) (Wire.of_hex der)
                    | [ "1"; der ] -> Option.map (fun d -> (true, d)) (Wire.of_hex der)
                    | _ -> None)
                  rows
              in
              if List.length decoded = List.length rows then Some (start, decoded)
              else None
          | _ -> None)
      | _ -> None)
  | [] -> None

(* --- one log session --------------------------------------------------- *)

type session = {
  s_raw : (int * string) list;  (* ascending corpus index *)
  s_quar : (int * string * Faults.Error.t) list;  (* ascending *)
  s_cov : coverage;
  s_interrupted : bool;
}

exception Stop of string     (* abandon this log *)
exception Interrupted        (* stop_after_pages test hook *)
exception Bad_page           (* one failed/malformed page *)

(* [present.(tree_index)] is the corpus index an entry maps to, or -1
   for entries (precertificates) the analysis must skip.  [expected] is
   the number of mapped entries. *)
let fetch_log ?ckpt_file ?(resume = false) ?stop_after_pages ~cfg ~scale ~seed
    ~name ~(present : int array) ~transport ~bucket () =
  (* The whole per-log session is one trace slice on the worker
     domain's track; page fetches, STH refreshes and consistency
     checks nest inside it, with quarantine/breaker events as instant
     marks. *)
  Obs.Trace.span ~cat:"fetch" ~args:[ ("log", Obs.Trace.Str name) ] "session"
  @@ fun () ->
  let policy = cfg.policy in
  let clock = Net.Transport.clock transport in
  let expected = Array.fold_left (fun n i -> if i >= 0 then n + 1 else n) 0 present in
  let breaker =
    Faults.Breaker.create ~threshold:cfg.breaker_threshold
      ~cooldown:cfg.breaker_cooldown ("fetch:" ^ name)
  in
  let cur =
    match
      if resume then Option.bind ckpt_file Faults.Checkpoint.load else None
    with
    | Some c
      when c.Faults.Checkpoint.scale = scale
           && c.Faults.Checkpoint.seed = seed
           && (c.Faults.Checkpoint.state : cursor).c_log = name ->
        c.Faults.Checkpoint.state
    | _ -> fresh_cursor name
  in
  let next = ref cur.c_next in
  let verified = ref cur.c_verified in
  let tree = cur.c_tree in
  let tree_ok = ref cur.c_tree_ok in
  let refresh = ref cur.c_refresh in
  let pend = ref cur.c_pend in
  let raw = ref cur.c_raw in
  let quar = ref cur.c_quar in
  let gaps = ref cur.c_gaps in
  let requests = ref cur.c_requests in
  let retries = ref cur.c_retries in
  let split = ref false in
  let abandoned = ref None in
  let interrupted = ref false in
  let pages_this_session = ref 0 in
  let save_ckpt () =
    Option.iter
      (fun file ->
        Faults.Checkpoint.save file
          {
            Faults.Checkpoint.scale;
            seed;
            next_index = !next;
            state =
              {
                c_log = name;
                c_next = !next;
                c_verified = !verified;
                c_tree = tree;
                c_tree_ok = !tree_ok;
                c_refresh = !refresh;
                c_pend = !pend;
                c_raw = !raw;
                c_quar = !quar;
                c_gaps = !gaps;
                c_requests = !requests;
                c_retries = !retries;
              };
          })
      ckpt_file
  in
  let now () = Net.Clock.now clock in
  let attempts_of_error = function
    | Net.Client.Attempts_exhausted { attempts; _ }
    | Net.Client.Budget_exhausted { attempts; _ } ->
        attempts
  in
  (* One client request behind the breaker.  An open breaker waits out
     its cooldown on the virtual clock, then probes; past [max_trips]
     the log is abandoned. *)
  let call ?(hedge = false) ~endpoint ~page () =
    if not (Faults.Breaker.allow ~now:(now ()) breaker) then begin
      (match Faults.Breaker.cooldown_until breaker with
      | Some t -> Net.Clock.advance_to clock t
      | None -> ());
      ignore (Faults.Breaker.allow ~now:(now ()) breaker)
    end;
    match
      Net.Client.request ~policy ~bucket ~hedge ~validate:Wire.valid ~transport
        ~log:name ~endpoint ~page ()
    with
    | Ok f ->
        incr requests;
        retries := !retries + f.Net.Client.attempts - 1;
        Faults.Breaker.success breaker;
        Wire.open_ f.Net.Client.body
    | Error e ->
        incr requests;
        retries := !retries + attempts_of_error e - 1;
        Faults.Breaker.failure ~now:(now ()) breaker;
        if Faults.Breaker.trips breaker >= cfg.max_trips then begin
          if Obs.Trace.enabled () then
            Obs.Trace.instant ~cat:"fetch"
              ~args:
                [ ("log", Obs.Trace.Str name);
                  ("trips", Obs.Trace.Int (Faults.Breaker.trips breaker)) ]
              "breaker-trip";
          raise
            (Stop
               (Printf.sprintf "breaker open after %d trips (%s)"
                  (Faults.Breaker.trips breaker)
                  (Net.Client.describe e)))
        end;
        None
  in
  (* Split view (or any unverifiable window): the unverified range goes
     to quarantine as Integrity and the log is abandoned. *)
  let quarantine_pending reason =
    if Obs.Trace.enabled () then
      Obs.Trace.instant ~cat:"fetch"
        ~args:[ ("log", Obs.Trace.Str name); ("reason", Obs.Trace.Str reason) ]
        "quarantine";
    split := true;
    Obs.Counter.inc (Obs.Counter.Labeled.get (Lazy.force obs_split) name);
    List.iter
      (fun (ti, precert, der) ->
        if (not precert) && ti < Array.length present && present.(ti) >= 0 then
          quar :=
            (present.(ti), der, Faults.Error.Integrity { log = name; detail = reason })
            :: !quar)
      (List.rev !pend);
    pend := [];
    raise (Stop reason)
  in
  let get_sth () =
    Obs.Trace.span ~cat:"fetch" "sth-refresh" @@ fun () ->
    let rec go () =
      incr refresh;
      match call ~endpoint:"get-sth" ~page:!refresh () with
      | Some lines -> (
          match parse_sth lines with
          | Some sth -> sth
          | None ->
              Faults.Breaker.failure ~now:(now ()) breaker;
              if Faults.Breaker.trips breaker >= cfg.max_trips then
                raise (Stop "breaker open (malformed STH)");
              go ())
      | None -> go ()
    in
    go ()
  in
  (* Verify a refreshed STH against the trusted one (the checkpointed
     STH, on a resumed session). *)
  let check_sth (n1, r1) =
    Obs.Trace.span ~cat:"fetch" "check-sth" @@ fun () ->
    (match !verified with
    | None -> ()
    | Some (n0, r0) ->
        if n1 = n0 then begin
          if not (String.equal r1 r0) then
            quarantine_pending
              (Printf.sprintf "split view: same size %d, different roots" n1)
        end
        else if n1 < n0 then
          quarantine_pending
            (Printf.sprintf "split view: tree shrank %d -> %d" n0 n1)
        else begin
          let proof =
            let rec go tries =
              if tries >= 3 then
                quarantine_pending
                  (Printf.sprintf "consistency proof %d -> %d unavailable" n0 n1)
              else
                match
                  call
                    ~endpoint:("get-consistency/" ^ string_of_int n1)
                    ~page:n0 ()
                with
                | Some lines -> (
                    match parse_consistency lines with
                    | Some proof -> proof
                    | None -> go (tries + 1))
                | None -> go (tries + 1)
            in
            go 0
          in
          if
            not
              (Merkle.verify_consistency ~old_size:n0 ~old_root:r0 ~new_size:n1
                 ~new_root:r1 ~proof)
          then
            quarantine_pending
              (Printf.sprintf
                 "split view: consistency proof %d -> %d failed verification" n0
                 n1)
        end);
    verified := Some (n1, r1);
    Obs.Counter.inc (Lazy.force obs_sth)
  in
  (* Fetch the page starting at [!next]. *)
  let fetch_page ~tail =
    Obs.Trace.span ~cat:"fetch"
      ~args:[ ("start", Obs.Trace.Int !next) ]
      "page"
    @@ fun () ->
    let start = !next in
    (match call ~hedge:tail ~endpoint:"get-entries" ~page:start () with
    | None -> raise Bad_page
    | Some lines -> (
        match parse_entries lines with
        | Some (s, rows) when s = start && rows <> [] ->
            if !tree_ok && Merkle.size tree = start then
              List.iter
                (fun (precert, der) ->
                  ignore (Merkle.append tree (Log.leaf_bytes ~precert der)))
                rows
            else tree_ok := false;
            List.iteri
              (fun i (precert, der) -> pend := (start + i, precert, der) :: !pend)
              rows;
            next := start + List.length rows;
            Obs.Counter.inc (Lazy.force obs_pages)
        | _ -> raise Bad_page));
    incr pages_this_session;
    if !pages_this_session mod 16 = 0 then save_ckpt ();
    match stop_after_pages with
    | Some k when !pages_this_session >= k -> raise Interrupted
    | _ -> ()
  in
  let skip_page ~stop =
    incr gaps;
    tree_ok := false;
    Obs.Counter.inc (Lazy.force obs_gaps);
    next := min stop (!next + cfg.page_cap)
  in
  (* Window close: the running leaf tree must reproduce the verified
     root (when no gap broke it), then the pending entries inside the
     verified prefix become deliverable.  A server may serve past the
     STH we are working against (it published again mid-window); those
     entries stay pending until a later STH covers them. *)
  let flush_at n root =
    if !tree_ok && Merkle.size tree >= n && not (String.equal (Merkle.root_of_range tree n) root)
    then
      quarantine_pending
        (Printf.sprintf "split view: leaf root mismatch at size %d" n);
    let deliver, keep =
      List.partition (fun (ti, _, _) -> ti < n) (List.rev !pend)
    in
    let delivered = Obs.Counter.Labeled.get (Lazy.force obs_entries) name in
    List.iter
      (fun (ti, precert, der) ->
        if (not precert) && ti < Array.length present && present.(ti) >= 0 then begin
          raw := (present.(ti), der) :: !raw;
          Obs.Counter.inc delivered
        end)
      deliver;
    pend := List.rev keep;
    save_ckpt ()
  in
  (try
     let finished = ref false in
     while not !finished do
       let n1, r1 = get_sth () in
       check_sth (n1, r1);
       if !next >= n1 && !pend = [] then finished := true
       else begin
         let since_tripwire = ref 0 in
         while !next < n1 do
           let tail = !next + cfg.page_cap >= n1 in
           (try fetch_page ~tail with Bad_page -> skip_page ~stop:n1);
           incr since_tripwire;
           if !since_tripwire >= max 1 cfg.sth_every && !next < n1 then begin
             since_tripwire := 0;
             (* Mid-window tripwire: the published head must still be
                consistent with what we trusted. *)
             let sth = get_sth () in
             check_sth sth
           end
         done;
         flush_at n1 r1
       end
     done
   with
  | Stop reason ->
      abandoned := Some reason;
      Obs.Counter.inc (Obs.Counter.Labeled.get (Lazy.force obs_abandoned) name);
      save_ckpt ()
  | Interrupted ->
      interrupted := true;
      save_ckpt ());
  let s_raw = List.rev !raw in
  let s_quar = List.rev !quar in
  let covered = List.map fst s_raw @ List.map (fun (i, _, _) -> i) s_quar in
  let covered = List.sort_uniq compare covered in
  (* Coalesce corpus indices into spans, treating indices adjacent in
     [present] (this log's delivery order) as contiguous — a dropped
     index between them is not a coverage gap. *)
  let adjacency = Hashtbl.create (Array.length present) in
  let last = ref (-1) in
  Array.iter
    (fun ci ->
      if ci >= 0 then begin
        if !last >= 0 then Hashtbl.replace adjacency ci !last;
        last := ci
      end)
    present;
  let spans =
    List.rev
      (List.fold_left
         (fun acc ci ->
           match acc with
           | (lo, hi) :: rest when Hashtbl.find_opt adjacency ci = Some hi ->
               (lo, ci) :: rest
           | _ -> (ci, ci) :: acc)
         [] covered)
  in
  {
    s_raw;
    s_quar;
    s_cov =
      {
        log = name;
        expected;
        delivered = List.length s_raw;
        quarantined = List.length s_quar;
        spans;
        page_gaps = !gaps;
        abandoned = !abandoned;
        split_view = !split;
        requests = !requests;
        retries = !retries;
      };
    s_interrupted = !interrupted;
  }

(* --- the corpus source ------------------------------------------------- *)

(* Derive the fault-plan seed from the corpus seed unless pinned, so
   "same seed" reruns replay both the data and the weather. *)
let plan_of cfg ~seed =
  {
    Net.Fault.default_plan with
    Net.Fault.seed = (match cfg.net_seed with Some s -> s | None -> seed lxor 0x7E7);
    rate = cfg.fault_rate;
    kinds = cfg.fault_kinds;
    flap_rate = cfg.flap_rate;
  }

(* Merge one session's delivered and quarantined streams back into a
   single ascending item stream, parsing delivered DER into entries. *)
let items_of_session s =
  let rec merge raws quars =
    match (raws, quars) with
    | [], [] -> []
    | (ci, der) :: rest, [] -> item_of ci der :: merge rest []
    | [], (ci, der, e) :: rest -> Undecodable (ci, der, e) :: merge [] rest
    | ((ci, der) :: rrest as rs), ((qi, qder, qe) :: qrest as qs) ->
        if ci <= qi then item_of ci der :: merge rrest qs
        else Undecodable (qi, qder, qe) :: merge rs qrest
  and item_of ci der =
    match X509.Certificate.parse der with
    | Error e -> Undecodable (ci, der, e)
    | Ok cert -> (
        match Dataset.entry_of_cert cert with
        | Ok entry -> Got (ci, entry)
        | Error e -> Undecodable (ci, der, e))
  in
  merge s.s_raw s.s_quar

let corpus ?(scale = Dataset.default_scale) ~seed ?mutator ?(drop = false)
    ?checkpoint ?(resume = false) ?stop_after_pages ?(jobs = 1) cfg =
  prewarm ();
  let parts = Par.shards ~jobs:cfg.logs scale in
  let plan = plan_of cfg ~seed in
  let tasks =
    List.mapi
      (fun k (lo, hi) () ->
        let name = log_name k in
        let log = Log.create ~name in
        let present = ref [] in
        Dataset.iter_deliveries ~scale ~start:lo ~stop:hi ?mutator ~drop ~seed
          (fun index delivery ->
            match delivery with
            | Dataset.Entry e ->
                ignore (Log.add_chain log e.Dataset.cert.X509.Certificate.der);
                present := index :: !present
            | Dataset.Corrupt { der; _ } ->
                ignore (Log.add_chain log der);
                present := index :: !present);
        let present = Array.of_list (List.rev !present) in
        let server = Server.create ~page_cap:cfg.page_cap ~name log in
        List.iter
          (fun (n, at_request, flip) ->
            if n = name then Server.equivocate_after server ~at_request ~flip)
          cfg.equivocate;
        let clock = Net.Clock.create () in
        let transport =
          Net.Transport.create ~plan
            ~down:(fun l -> List.mem l cfg.down)
            ~clock (Server.handle server)
        in
        let bucket =
          Net.Bucket.create ~clock ~rate:cfg.rate_per_sec ~burst:cfg.burst
        in
        let ckpt_file = Option.map (fun f -> cursor_file f k) checkpoint in
        fetch_log ?ckpt_file ~resume ?stop_after_pages ~cfg ~scale ~seed ~name
          ~present ~transport ~bucket ())
      parts
  in
  let sessions = Par.run ~jobs tasks in
  (* Per-log corpus-index ranges are contiguous and ascending, so
     joining per-log streams in log order keeps items globally
     ascending — the same order the generate source uses. *)
  let items = List.concat_map items_of_session sessions in
  (items, List.map (fun s -> s.s_cov) sessions)

(* --- long-lived feeds (the monitor daemon) ----------------------------- *)

(* A feed is one log's whole fetch apparatus kept alive between polls:
   the populated log and its server, the per-log clock, transport and
   token bucket, and the cursor file that carries the session state
   (trusted STH, pending window, cumulative deliveries) from one poll
   to the next.  The server starts with nothing published; the driver
   grows it with {!feed_publish} and each {!poll} runs an ordinary
   {!fetch_log} session against the currently published head. *)
type feed = {
  f_k : int;
  f_name : string;
  f_lo : int;
  f_hi : int;
  f_present : int array;
  f_server : Server.t;
  f_transport : Net.Transport.t;
  f_bucket : Net.Bucket.t;
  f_ckpt : string;
  f_cfg : cfg;
  f_scale : int;
  f_seed : int;
}

let feed_name f = f.f_name
let feed_range f = (f.f_lo, f.f_hi)
let feed_goal f = Array.length f.f_present
let feed_published f = Server.published f.f_server

let feeds ?mutator ?(drop = false) ~checkpoint ~scale ~seed cfg =
  prewarm ();
  let parts = Par.shards ~jobs:cfg.logs scale in
  let plan = plan_of cfg ~seed in
  List.mapi
    (fun k (lo, hi) ->
      let name = log_name k in
      let log = Log.create ~name in
      let present = ref [] in
      Dataset.iter_deliveries ~scale ~start:lo ~stop:hi ?mutator ~drop ~seed
        (fun index delivery ->
          match delivery with
          | Dataset.Entry e ->
              ignore (Log.add_chain log e.Dataset.cert.X509.Certificate.der);
              present := index :: !present
          | Dataset.Corrupt { der; _ } ->
              ignore (Log.add_chain log der);
              present := index :: !present);
      let present = Array.of_list (List.rev !present) in
      let server = Server.create ~page_cap:cfg.page_cap ~name log in
      Server.set_published server 0;
      List.iter
        (fun (n, at_request, flip) ->
          if n = name then Server.equivocate_after server ~at_request ~flip)
        cfg.equivocate;
      let clock = Net.Clock.create () in
      let transport =
        Net.Transport.create ~plan
          ~down:(fun l -> List.mem l cfg.down)
          ~clock (Server.handle server)
      in
      let bucket =
        Net.Bucket.create ~clock ~rate:cfg.rate_per_sec ~burst:cfg.burst
      in
      {
        f_k = k;
        f_name = name;
        f_lo = lo;
        f_hi = hi;
        f_present = present;
        f_server = server;
        f_transport = transport;
        f_bucket = bucket;
        f_ckpt = cursor_file checkpoint k;
        f_cfg = cfg;
        f_scale = scale;
        f_seed = seed;
      })
    parts

let feed_publish f n =
  let n = min n (feed_goal f) in
  if n > Server.published f.f_server then Server.set_published f.f_server n

let feed_trusted f =
  match (Faults.Checkpoint.load f.f_ckpt : cursor Faults.Checkpoint.t option) with
  | Some c
    when c.Faults.Checkpoint.scale = f.f_scale
         && c.Faults.Checkpoint.seed = f.f_seed
         && c.Faults.Checkpoint.state.c_log = f.f_name ->
      Option.map fst c.Faults.Checkpoint.state.c_verified
  | _ -> None

let poll ?stop_after_pages f =
  fetch_log ~ckpt_file:f.f_ckpt ~resume:true ?stop_after_pages ~cfg:f.f_cfg
    ~scale:f.f_scale ~seed:f.f_seed ~name:f.f_name ~present:f.f_present
    ~transport:f.f_transport ~bucket:f.f_bucket ()
