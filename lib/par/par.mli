(** Domain-pool execution for the sharded pipeline.

    The engine only handles the mechanics — splitting an index range
    into contiguous shards, running one task per shard on its own
    domain, and joining results in shard order.  Determinism is the
    caller's contract: shard work must be a pure function of the range
    (see {!Ucrypto.Prng.of_pair}), and merges must walk results in the
    shard order this module returns them in. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()], floored at 1 — the default
    for every [--jobs] flag. *)

val shards : jobs:int -> int -> (int * int) list
(** [shards ~jobs n] splits [[0, n)] into at most [jobs] contiguous
    [(lo, hi)] ranges in ascending order; sizes differ by at most one.
    Empty for [n <= 0]; never returns an empty range. *)

val map_shards :
  jobs:int -> scale:int -> (shard:int -> lo:int -> hi:int -> 'a) -> 'a list
(** [map_shards ~jobs ~scale f] runs [f ~shard ~lo ~hi] for every shard
    of [[0, scale)], one domain per shard ([jobs <= 1] runs inline), and
    returns results in shard (index) order.  Every domain is joined
    even when one raises; the first exception in shard order is then
    re-raised. *)

val map_tasks : jobs:int -> (unit -> 'a) list -> 'a list
(** Run the tasks on at most [jobs] domains: one domain per task while
    the list fits the budget, the shared work queue of {!run} beyond it
    — never more than [jobs] live domains either way.  Results keep the
    input order; same join/exception discipline as {!map_shards}. *)

val run : jobs:int -> (unit -> 'a) list -> 'a list
(** [run ~jobs thunks] executes the thunks on a pool of [jobs] domains
    fed from a shared work queue (for task lists longer than the pool);
    results keep the input order. *)
