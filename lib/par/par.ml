let default_jobs () = max 1 (Domain.recommended_domain_count ())

let shards ~jobs n =
  if n <= 0 then []
  else begin
    let jobs = max 1 (min jobs n) in
    let base = n / jobs and extra = n mod jobs in
    (* The first [extra] shards take one more element, so shard sizes
       differ by at most one and ranges stay contiguous and ascending —
       the deterministic-merge contract leans on that ordering. *)
    let rec go k lo acc =
      if k >= jobs then List.rev acc
      else begin
        let len = base + if k < extra then 1 else 0 in
        go (k + 1) (lo + len) ((lo, lo + len) :: acc)
      end
    in
    go 0 0 []
  end

(* Run every task, collecting results (or the exception) per task so a
   crash in one domain never leaks the others un-joined; the first
   failure (in task order) is re-raised after all domains finished. *)
let collect_results thunks =
  List.map (fun r -> match r with Ok v -> v | Error (e, bt) -> Printexc.raise_with_backtrace e bt) thunks

let guarded f = try Ok (f ()) with e -> Error (e, Printexc.get_raw_backtrace ())

(* Trace hooks: the coordinator marks each spawn/join as an instant
   event on its own track, and each worker domain brackets its whole
   life in a "worker" span, so a recorded trace shows the domain
   lifecycle next to the spans the worker emitted while running.  All
   of it is a single atomic load when tracing is off. *)
let trace_lifecycle name k =
  if Obs.Trace.enabled () then
    Obs.Trace.instant ~cat:"par" ~args:[ ("domain", Obs.Trace.Int k) ] name

let worker_span f = Obs.Trace.span ~cat:"par" "worker" f

let run ~jobs thunks =
  let tasks = Array.of_list thunks in
  let n = Array.length tasks in
  if n = 0 then []
  else if jobs <= 1 || n = 1 then List.map (fun f -> f ()) thunks
  else begin
    (* A shared work index feeds [jobs] domains; results keep the input
       order regardless of which domain claimed which task. *)
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      worker_span @@ fun () ->
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          results.(i) <- Some (guarded tasks.(i));
          loop ()
        end
      in
      loop ()
    in
    let doms =
      List.init (min jobs n) (fun k ->
          trace_lifecycle "spawn" k;
          Domain.spawn worker)
    in
    List.iteri
      (fun k d ->
        Domain.join d;
        trace_lifecycle "join" k)
      doms;
    collect_results
      (Array.to_list
         (Array.map (function Some r -> r | None -> assert false) results))
  end

let map_tasks ~jobs tasks =
  match tasks with
  | [] -> []
  | [ f ] -> [ f () ]
  | tasks when jobs <= 1 -> List.map (fun f -> f ()) tasks
  | tasks when List.length tasks <= jobs ->
      let doms =
        List.mapi
          (fun k f ->
            trace_lifecycle "spawn" k;
            Domain.spawn (fun () -> worker_span (fun () -> guarded f)))
          tasks
      in
      collect_results
        (List.mapi
           (fun k d ->
             let r = Domain.join d in
             trace_lifecycle "join" k;
             r)
           doms)
  | tasks ->
      (* More tasks than the domain budget: feed them through the shared
         work index above so at most [jobs] domains ever exist at once. *)
      run ~jobs tasks

let map_shards ~jobs ~scale f =
  let ranges = shards ~jobs scale in
  map_tasks ~jobs:(List.length ranges)
    (List.mapi
       (fun shard (lo, hi) () ->
         Obs.Trace.span ~cat:"par"
           ~args:
             [ ("shard", Obs.Trace.Int shard); ("lo", Obs.Trace.Int lo);
               ("hi", Obs.Trace.Int hi) ]
           "shard"
           (fun () -> f ~shard ~lo ~hi))
       ranges)
