(** IDNA2008 (RFC 5890–5892) label processing and validation.

    The derived code-point property is approximated with an explicit
    DISALLOWED classification (controls, format and layout characters,
    whitespace variants, punctuation/symbol blocks, presentation forms,
    private use, noncharacters) — the classes whose misuse the paper's
    T1/T2 findings hinge on — while letters and digits of natural
    scripts are PVALID and uppercase ASCII is MAPPED.  DESIGN.md
    documents the approximation. *)

module Punycode : module type of Punycode
(** RFC 3492 Punycode codec. *)

module Dns : module type of Dns
(** RFC 1034/5890 DNS name syntax. *)

type property = Pvalid | Disallowed | Mapped of Unicode.Cp.t

val property : Unicode.Cp.t -> property
(** [property cp] is the (approximated) IDNA2008 derived property.
    BMP lookups hit a flat direct-index table; astral code points are
    classified on the fly. *)

val property_classify : Unicode.Cp.t -> property
(** The block-search reference implementation of {!property}; the flat
    BMP table is generated from it and tested against it
    exhaustively. *)

type issue =
  | Malformed_punycode of string     (** A-label that cannot decode. *)
  | Unpermitted_char of Unicode.Cp.t (** DISALLOWED code point. *)
  | Not_nfc                          (** U-label not NFC-normalized. *)
  | Leading_combining_mark
  | Bad_hyphen34                     (** "--" in positions 3–4 without xn. *)
  | Leading_hyphen
  | Trailing_hyphen
  | Bidi_violation                   (** RTL/LTR mixing or bidi controls. *)
  | Empty_label
  | Encoded_label_too_long
  | Non_canonical_alabel             (** decode-then-re-encode mismatch. *)

val pp_issue : Format.formatter -> issue -> unit

val ulabel_issues : Unicode.Cp.t array -> issue list
(** [ulabel_issues cps] validates a U-label. *)

val alabel_issues : string -> issue list
(** [alabel_issues l] validates an A-label (with ["xn--"] prefix): it
    must decode, round-trip, and yield a valid U-label. *)

val label_to_ascii : string -> (string, issue list) result
(** [label_to_ascii label] maps and validates a UTF-8 label and
    produces its ASCII form (the label itself if pure ASCII, otherwise
    an ["xn--"] A-label). *)

val label_to_unicode : string -> (string, issue list) result
(** [label_to_unicode l] decodes an A-label to UTF-8 (identity for
    plain ASCII labels).  The result may still be invalid — pair with
    {!alabel_issues} for validation. *)

val to_ascii : string -> (string, (string * issue list) list) result
(** [to_ascii domain] converts every label of a UTF-8 domain name;
    errors list the offending labels. *)

val to_unicode : string -> string
(** [to_unicode domain] best-effort display conversion: labels that
    fail to decode are kept in their A-label form (mirroring what user
    agents do). *)

val domain_issues : string -> (string * issue list) list
(** [domain_issues domain] validates each label of an (ASCII, possibly
    punycoded) domain, e.g. a certificate DNSName: A-labels are fully
    validated, NR-LDH labels checked for syntax.  Returns per-label
    issues; empty means IDNA-clean. *)

val is_idn : string -> bool
(** [is_idn domain] is [true] iff some label is an A-label candidate
    (["xn--"]) or contains non-ASCII. *)
