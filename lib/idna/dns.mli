(** DNS name syntax (RFC 1034 preferred name syntax, RFC 5890 LDH
    rules) as applied to certificate DNSName fields. *)

type issue =
  | Empty_name
  | Name_too_long of int          (** over 253 octets *)
  | Empty_label
  | Label_too_long of string      (** over 63 octets *)
  | Bad_character of string * Unicode.Cp.t  (** label, offending cp *)
  | Leading_hyphen of string
  | Trailing_hyphen of string
  | Whitespace_in_name

val pp_issue : Format.formatter -> issue -> unit

val split_labels : string -> string list
(** [split_labels name] splits on dots; a trailing root dot yields a
    final empty label. *)

val check : ?allow_wildcard:bool -> string -> issue list
(** [check name] lists every LDH-syntax violation of an (ASCII) DNS
    name.  [allow_wildcard] (default true) permits a sole leading
    ["*"] label, as certificates do. *)

val is_ldh_name : string -> bool
(** [is_ldh_name name] is [check name = []]. *)

val is_reserved_ldh_label : string -> bool
(** [is_reserved_ldh_label l] — hyphens in positions 3 and 4
    (RFC 5890 R-LDH), e.g. any ["xn--"] label. *)

val is_a_label_candidate : string -> bool
(** [is_a_label_candidate l] — case-insensitive ["xn--"] prefix. *)

val is_idn_cctld : string -> bool
(** [is_idn_cctld l] — [l] is the A-label of a root-zone IDN
    {e country-code} TLD (e.g. ["xn--p1ai"] = .рф).  IDN generic TLDs
    are deliberately excluded: monitors that refuse "Punycode IDN
    ccTLD" queries (Table 6) refuse only the former. *)

val normalize_case : string -> string
(** [normalize_case name] lowercases ASCII letters (DNS names compare
    case-insensitively). *)
