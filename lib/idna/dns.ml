type issue =
  | Empty_name
  | Name_too_long of int
  | Empty_label
  | Label_too_long of string
  | Bad_character of string * Unicode.Cp.t
  | Leading_hyphen of string
  | Trailing_hyphen of string
  | Whitespace_in_name

let pp_issue ppf = function
  | Empty_name -> Format.fprintf ppf "empty name"
  | Name_too_long n -> Format.fprintf ppf "name length %d exceeds 253 octets" n
  | Empty_label -> Format.fprintf ppf "empty label"
  | Label_too_long l -> Format.fprintf ppf "label %S exceeds 63 octets" l
  | Bad_character (l, cp) ->
      Format.fprintf ppf "label %S contains %s" l (Unicode.Cp.to_string cp)
  | Leading_hyphen l -> Format.fprintf ppf "label %S starts with a hyphen" l
  | Trailing_hyphen l -> Format.fprintf ppf "label %S ends with a hyphen" l
  | Whitespace_in_name -> Format.fprintf ppf "whitespace inside name"

let split_labels name = String.split_on_char '.' name

let check_label label issues =
  if label = "" then Empty_label :: issues
  else begin
    let issues = if String.length label > 63 then Label_too_long label :: issues else issues in
    let issues = if label.[0] = '-' then Leading_hyphen label :: issues else issues in
    let issues =
      if label.[String.length label - 1] = '-' then Trailing_hyphen label :: issues
      else issues
    in
    let bad = ref [] in
    String.iter
      (fun c ->
        let cp = Char.code c in
        if not (Unicode.Props.is_ldh cp) then bad := Bad_character (label, cp) :: !bad)
      label;
    List.rev_append !bad issues
  end

let check ?(allow_wildcard = true) name =
  if name = "" then [ Empty_name ]
  else begin
    let issues = if String.length name > 253 then [ Name_too_long (String.length name) ] else [] in
    let issues =
      if String.exists (fun c -> c = ' ' || c = '\t') name then Whitespace_in_name :: issues
      else issues
    in
    (* A trailing root dot is legal; drop the final empty label. *)
    let labels =
      match List.rev (split_labels name) with
      | "" :: rest -> List.rev rest
      | all -> List.rev all
    in
    let labels =
      match labels with
      | "*" :: rest when allow_wildcard -> rest
      | l -> l
    in
    List.rev (List.fold_left (fun acc l -> check_label l acc) (List.rev issues) labels)
  end

let is_ldh_name name = check name = []

let is_reserved_ldh_label l =
  String.length l >= 4 && l.[2] = '-' && l.[3] = '-'

let is_a_label_candidate l =
  String.length l >= 4
  && (l.[0] = 'x' || l.[0] = 'X')
  && (l.[1] = 'n' || l.[1] = 'N')
  && l.[2] = '-' && l.[3] = '-'

(* IDN country-code TLDs (root-zone ccIDNs, A-label form).  Monitors
   that refuse "Punycode IDN ccTLD" queries (Table 6) refuse exactly
   these — an A-label under an IDN *generic* TLD (xn--q9jyb4c etc.) is
   an ordinary query that simply may match nothing. *)
let idn_cctlds =
  [ "xn--p1ai" (* .рф  Russia *);
    "xn--fiqs8s" (* .中国 China *);
    "xn--fiqz9s" (* .中國 China *);
    "xn--j6w193g" (* .香港 Hong Kong *);
    "xn--kprw13d" (* .台湾 Taiwan *);
    "xn--kpry57d" (* .台灣 Taiwan *);
    "xn--3e0b707e" (* .한국 Korea *);
    "xn--90ais" (* .бел Belarus *);
    "xn--90a3ac" (* .срб Serbia *);
    "xn--d1alf" (* .мкд North Macedonia *);
    "xn--e1a4c" (* .ею EU (Cyrillic) *);
    "xn--h2brj9c" (* .भारत India *);
    "xn--45brj9c" (* .বাংলা India *);
    "xn--s9brj9c" (* .ਭਾਰਤ India *);
    "xn--gecrj9c" (* .ભારત India *);
    "xn--xkc2dl3a5ee0h" (* .இந்தியா India *);
    "xn--fpcrj9c3d" (* .భారత్ India *);
    "xn--mgbbh1a71e" (* .بھارت India *);
    "xn--wgbh1c" (* .مصر Egypt *);
    "xn--mgberp4a5d4ar" (* .السعودية Saudi Arabia *);
    "xn--mgbaam7a8h" (* .امارات UAE *);
    "xn--mgbayh7gpa" (* .الاردن Jordan *);
    "xn--mgbc0a9azcg" (* .المغرب Morocco *);
    "xn--mgba3a4f16a" (* .ایران Iran *);
    "xn--mgbx4cd0ab" (* .مليسيا Malaysia *);
    "xn--mgbtx2b" (* .عراق Iraq *);
    "xn--mgbpl2fh" (* .سودان Sudan *);
    "xn--pgbs0dh" (* .تونس Tunisia *);
    "xn--lgbbat1ad8j" (* .الجزائر Algeria *);
    "xn--ygbi2ammx" (* .فلسطين Palestine *);
    "xn--mgb9awbf" (* .عمان Oman *);
    "xn--wgbl6a" (* .قطر Qatar *);
    "xn--4dbrk0ce" (* .ישראל Israel *);
    "xn--node" (* .გე Georgia *);
    "xn--qxam" (* .ελ Greece *);
    "xn--o3cw4h" (* .ไทย Thailand *);
    "xn--l1acc" (* .мон Mongolia *);
    "xn--j1amh" (* .укр Ukraine *);
    "xn--y9a3aq" (* .հայ Armenia *);
    "xn--clchc0ea0b2g2a9gcd" (* .சிங்கப்பூர் Singapore *);
    "xn--yfro4i67o" (* .新加坡 Singapore *);
    "xn--ogbpf8fl" (* .سورية Syria *);
    "xn--mgbtf8fl" (* .سوريا Syria *);
    "xn--fzc2c9e2c" (* .ලංකා Sri Lanka *);
    "xn--xkc2al3hye2a" (* .இலங்கை Sri Lanka *);
    "xn--mix891f" (* .澳門 Macao *);
    "xn--mix082f" (* .澳门 Macao *);
    "xn--mgbah1a3hjkrd" (* .موريتانيا Mauritania *);
    "xn--mgbai9azgqp6j" (* .پاکستان Pakistan *);
    "xn--mgbcpq6gpa1a" (* .البحرين Bahrain *) ]

let is_idn_cctld l = List.mem (String.lowercase_ascii l) idn_cctlds

let normalize_case name = String.lowercase_ascii name
