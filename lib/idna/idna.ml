module Punycode = Punycode
module Dns = Dns

type property = Pvalid | Disallowed | Mapped of Unicode.Cp.t

(* Blocks whose content is (almost entirely) punctuation or symbols —
   DISALLOWED under IDNA2008. *)
let symbol_block_names =
  [
    "General Punctuation"; "Superscripts and Subscripts"; "Currency Symbols";
    "Letterlike Symbols"; "Number Forms"; "Arrows"; "Mathematical Operators";
    "Miscellaneous Technical"; "Control Pictures"; "Optical Character Recognition";
    "Enclosed Alphanumerics"; "Box Drawing"; "Block Elements"; "Geometric Shapes";
    "Miscellaneous Symbols"; "Dingbats"; "Miscellaneous Mathematical Symbols-A";
    "Supplemental Arrows-A"; "Braille Patterns"; "Supplemental Arrows-B";
    "Miscellaneous Mathematical Symbols-B"; "Supplemental Mathematical Operators";
    "Miscellaneous Symbols and Arrows"; "Supplemental Punctuation";
    "Alphabetic Presentation Forms"; "Arabic Presentation Forms-A";
    "Variation Selectors"; "Vertical Forms"; "Combining Half Marks";
    "CJK Compatibility Forms"; "Small Form Variants"; "Arabic Presentation Forms-B";
    "Halfwidth and Fullwidth Forms"; "Specials"; "Private Use Area";
    "High Surrogates"; "High Private Use Surrogates"; "Low Surrogates";
    "Mahjong Tiles"; "Domino Tiles"; "Playing Cards";
    "Enclosed Alphanumeric Supplement"; "Enclosed Ideographic Supplement";
    "Miscellaneous Symbols and Pictographs"; "Emoticons"; "Ornamental Dingbats";
    "Transport and Map Symbols"; "Alchemical Symbols"; "Geometric Shapes Extended";
    "Supplemental Arrows-C"; "Supplemental Symbols and Pictographs";
    "Chess Symbols"; "Symbols and Pictographs Extended-A";
    "Symbols for Legacy Computing"; "Tags"; "Variation Selectors Supplement";
    "Supplementary Private Use Area-A"; "Supplementary Private Use Area-B";
    "Musical Symbols"; "Byzantine Musical Symbols";
    "Mathematical Alphanumeric Symbols";
  ]

let symbol_blocks = Hashtbl.create 64

let () =
  List.iter (fun n -> Hashtbl.replace symbol_blocks n ()) symbol_block_names

let is_noncharacter cp =
  (cp >= 0xFDD0 && cp <= 0xFDEF) || cp land 0xFFFE = 0xFFFE

let property_classify cp =
  if Unicode.Props.is_ascii_lower cp || Unicode.Props.is_ascii_digit cp
     || cp = Char.code '-'
  then Pvalid
  else if Unicode.Props.is_ascii_upper cp then Mapped (cp + 32)
  else if cp <= 0x7F then Disallowed (* remaining ASCII punctuation *)
  else if Unicode.Props.is_control cp || Unicode.Props.is_format cp
          || Unicode.Props.is_whitespace cp || Unicode.Cp.is_surrogate cp
          || is_noncharacter cp
          || not (Unicode.Cp.is_valid cp)
  then Disallowed
  else if cp = 0xD7 || cp = 0xF7 then Disallowed (* multiply/divide signs *)
  else if cp >= 0xA0 && cp <= 0xBF then Disallowed (* Latin-1 punctuation *)
  else
    match Unicode.Blocks.find cp with
    | Some b when Hashtbl.mem symbol_blocks b.Unicode.Blocks.name -> Disallowed
    | Some _ -> Pvalid
    | None -> Disallowed

(* Flat BMP property table: the block search + symbol-name hash probe
   collapse to one array load per code point on the per-label hot path.
   The variant values (including the [Mapped] boxes for A–Z) are
   allocated once at single-threaded module init; the table is
   read-only afterwards. *)
let bmp_property = Array.init 0x10000 property_classify

let property cp =
  if cp lsr 16 = 0 then Array.unsafe_get bmp_property cp
  else property_classify cp

type issue =
  | Malformed_punycode of string
  | Unpermitted_char of Unicode.Cp.t
  | Not_nfc
  | Leading_combining_mark
  | Bad_hyphen34
  | Leading_hyphen
  | Trailing_hyphen
  | Bidi_violation
  | Empty_label
  | Encoded_label_too_long
  | Non_canonical_alabel

let pp_issue ppf = function
  | Malformed_punycode m -> Format.fprintf ppf "malformed punycode (%s)" m
  | Unpermitted_char cp ->
      Format.fprintf ppf "unpermitted code point %s" (Unicode.Cp.to_string cp)
  | Not_nfc -> Format.fprintf ppf "label is not NFC-normalized"
  | Leading_combining_mark -> Format.fprintf ppf "label starts with a combining mark"
  | Bad_hyphen34 -> Format.fprintf ppf "hyphens in positions 3 and 4"
  | Leading_hyphen -> Format.fprintf ppf "leading hyphen"
  | Trailing_hyphen -> Format.fprintf ppf "trailing hyphen"
  | Bidi_violation -> Format.fprintf ppf "bidi rule violation"
  | Empty_label -> Format.fprintf ppf "empty label"
  | Encoded_label_too_long -> Format.fprintf ppf "encoded label exceeds 63 octets"
  | Non_canonical_alabel -> Format.fprintf ppf "A-label is not the canonical encoding"

let is_combining cp = Unicode.Normalize.combining_class cp > 0

(* Bidirectional categories, approximated over the script ranges the
   corpus exercises (RFC 5893 §2 uses the full UCD property). *)
type bidi_cat = B_l | B_r_al | B_an | B_en | B_es | B_cs | B_et | B_on | B_nsm

let bidi_category cp =
  if Unicode.Props.is_ascii_digit cp || (cp >= 0x6F0 && cp <= 0x6F9) then B_en
  else if (cp >= 0x660 && cp <= 0x669) || (cp >= 0x600 && cp <= 0x605) || cp = 0x6DD
  then B_an
  else if cp = Char.code '+' || cp = Char.code '-' then B_es
  else if cp = Char.code ',' || cp = Char.code '.' || cp = Char.code ':' then B_cs
  else if cp = Char.code '%' || cp = Char.code '#' || cp = Char.code '$'
          || (cp >= 0xA2 && cp <= 0xA5)
  then B_et
  else if Unicode.Normalize.combining_class cp > 0
          || (cp >= 0x610 && cp <= 0x61A)
          || (cp >= 0x64B && cp <= 0x65F)
          || (cp >= 0x5B0 && cp <= 0x5BD)
  then B_nsm
  else if (cp >= 0x0590 && cp <= 0x05FF)
          || (cp >= 0x0600 && cp <= 0x08FF)
          || (cp >= 0xFB1D && cp <= 0xFDFF)
          || (cp >= 0xFE70 && cp <= 0xFEFF)
          || (cp >= 0x10800 && cp <= 0x10FFF)
          || (cp >= 0x1E800 && cp <= 0x1EEFF)
  then B_r_al
  else if Unicode.Props.is_ascii_letter cp
          || (cp >= 0xC0 && cp <= 0x2AF)
          || (cp >= 0x370 && cp <= 0x58F)
          || (cp >= 0x900 && cp <= 0x109F)
          || (cp >= 0x10A0 && cp <= 0x13FF)
          || (cp >= 0x1E00 && cp <= 0x1FFF)
          || (cp >= 0x3040 && cp <= 0xD7FF)
          || (cp >= 0x1E00 && cp <= 0x1FFF)
          || (cp >= 0xA000 && cp <= 0xABFF)
  then B_l
  else B_on

(* RFC 5893 §2, conditions 1–6, applied to every label carrying an RTL
   character (plus an outright ban on explicit bidi controls, which are
   DISALLOWED anyway). *)
let bidi_ok cps =
  if Array.exists Unicode.Props.is_bidi_control cps then false
  else begin
    let cats = Array.map bidi_category cps in
    let has_rtl = Array.exists (fun c -> c = B_r_al || c = B_an) cats in
    if not has_rtl then true
    else begin
      let n = Array.length cats in
      (* Condition 1: the first character must be L, R or AL. *)
      let first_ok = n > 0 && (cats.(0) = B_l || cats.(0) = B_r_al) in
      if not first_ok then false
      else if cats.(0) = B_r_al then begin
        (* RTL label: conditions 2–4. *)
        let allowed = function
          | B_r_al | B_an | B_en | B_es | B_cs | B_et | B_on | B_nsm -> true
          | B_l -> false
        in
        let all_allowed = Array.for_all allowed cats in
        (* Last non-NSM character must be R/AL/EN/AN. *)
        let rec last_strong i =
          if i < 0 then None
          else if cats.(i) = B_nsm then last_strong (i - 1)
          else Some cats.(i)
        in
        let end_ok =
          match last_strong (n - 1) with
          | Some (B_r_al | B_en | B_an) -> true
          | _ -> false
        in
        let has_en = Array.exists (( = ) B_en) cats in
        let has_an = Array.exists (( = ) B_an) cats in
        all_allowed && end_ok && not (has_en && has_an)
      end
      else begin
        (* LTR label containing AN/EN-triggering RTL content: conditions
           5–6. *)
        let allowed = function
          | B_l | B_en | B_es | B_cs | B_et | B_on | B_nsm -> true
          | B_r_al | B_an -> false
        in
        let all_allowed = Array.for_all allowed cats in
        let rec last_strong i =
          if i < 0 then None
          else if cats.(i) = B_nsm then last_strong (i - 1)
          else Some cats.(i)
        in
        let end_ok =
          match last_strong (n - 1) with Some (B_l | B_en) -> true | _ -> false
        in
        all_allowed && end_ok
      end
    end
  end

let ulabel_issues cps =
  if Array.length cps = 0 then [ Empty_label ]
  else begin
    let issues = ref [] in
    let add i = issues := i :: !issues in
    Array.iter
      (fun cp ->
        match property cp with
        | Pvalid -> ()
        | Mapped _ | Disallowed -> add (Unpermitted_char cp))
      cps;
    if not (Unicode.Normalize.is_nfc cps) then add Not_nfc;
    if is_combining cps.(0) then add Leading_combining_mark;
    let n = Array.length cps in
    if cps.(0) = Char.code '-' then add Leading_hyphen;
    if cps.(n - 1) = Char.code '-' then add Trailing_hyphen;
    if n >= 4 && cps.(2) = Char.code '-' && cps.(3) = Char.code '-' then add Bad_hyphen34;
    if not (bidi_ok cps) then add Bidi_violation;
    List.rev !issues
  end

let alabel_issues l =
  if not (Dns.is_a_label_candidate l) then [ Malformed_punycode "missing xn-- prefix" ]
  else begin
    let body = String.sub l 4 (String.length l - 4) in
    match Punycode.decode (String.lowercase_ascii body) with
    | Error m -> [ Malformed_punycode m ]
    | Ok [||] -> [ Malformed_punycode "empty A-label body" ]
    | Ok cps ->
        let issues =
          (* The decoded form must not be pure ASCII and must
             re-encode to the same body (canonical form). *)
          match Punycode.encode cps with
          | Error m -> [ Malformed_punycode m ]
          | Ok reencoded ->
              if not (String.equal reencoded (String.lowercase_ascii body)) then
                [ Non_canonical_alabel ]
              else []
        in
        let issues = if String.length l > 63 then Encoded_label_too_long :: issues else issues in
        (* Hyphen-3-4 does not apply to the xn-- prefix itself, so drop
           that issue from the decoded label check. *)
        let ulabel =
          List.filter (fun i -> i <> Bad_hyphen34) (ulabel_issues cps)
        in
        issues @ ulabel
  end

let label_to_ascii label =
  let cps = Unicode.Codec.cps_of_utf8 label in
  let mapped =
    Array.map (fun cp -> match property cp with Mapped m -> m | Pvalid | Disallowed -> cp) cps
  in
  let all_ascii = Array.for_all (fun cp -> cp < 0x80) mapped in
  if all_ascii then
    (* Plain NR-LDH label: the DNS-syntax checks of {!Dns.check} apply,
       not the U-label rules. *)
    Ok (Unicode.Codec.utf8_of_cps mapped)
  else begin
    let issues = ulabel_issues mapped in
    if issues <> [] then Error issues
    else
      match Punycode.encode mapped with
      | Error m -> Error [ Malformed_punycode m ]
      | Ok body ->
          let alabel = "xn--" ^ body in
          if String.length alabel > 63 then Error [ Encoded_label_too_long ]
          else Ok alabel
  end

let label_to_unicode l =
  if Dns.is_a_label_candidate l then begin
    let body = String.sub l 4 (String.length l - 4) in
    match Punycode.decode_utf8 (String.lowercase_ascii body) with
    | Ok text -> Ok text
    | Error m -> Error [ Malformed_punycode m ]
  end
  else Ok l

let to_ascii domain =
  let labels = Dns.split_labels domain in
  let results = List.map (fun l -> (l, label_to_ascii l)) labels in
  let errors =
    List.filter_map
      (function l, Error issues -> Some (l, issues) | _, Ok _ -> None)
      results
  in
  if errors <> [] then Error errors
  else
    Ok
      (String.concat "."
         (List.map (function _, Ok a -> a | _, Error _ -> assert false) results))

let to_unicode domain =
  Dns.split_labels domain
  |> List.map (fun l -> match label_to_unicode l with Ok u -> u | Error _ -> l)
  |> String.concat "."

let domain_issues domain =
  Dns.split_labels domain
  |> List.filter_map (fun l ->
         if l = "" then None
         else if Dns.is_a_label_candidate l then
           match alabel_issues l with [] -> None | issues -> Some (l, issues)
         else begin
           (* NR-LDH labels: only check DISALLOWED non-ASCII content
              (raw Unicode in a DNSName is itself a violation, caught
              by the DNS-syntax lints). *)
           let cps = Unicode.Codec.cps_of_utf8 l in
           let bad =
             Array.to_list cps
             |> List.filter (fun cp -> cp >= 0x80 && property cp = Disallowed)
             |> List.map (fun cp -> Unpermitted_char cp)
           in
           match bad with [] -> None | issues -> Some (l, issues)
         end)

let is_idn domain =
  Dns.split_labels domain
  |> List.exists (fun l ->
         Dns.is_a_label_candidate l || String.exists (fun c -> Char.code c >= 0x80) l)
