(* Traffic obfuscation (§6.2): an in-path adversary presents certificate
   variants to slip past middlebox blocklist rules, and noncompliant
   SANs slip past lax clients.

   Run with: dune exec examples/traffic_obfuscation.exe *)

let () =
  (* 1. The defender blocks certificates whose subject O equals the
     known-bad entity. *)
  let g = Ucrypto.Prng.create 2025 in
  let blocked = "Evil Entity Corp" in
  Printf.printf "blocklist rule: subject O = %S\n\n" blocked;
  List.iter
    (fun strategy ->
      let variant = Middlebox.Obfuscation.apply g strategy blocked in
      Printf.printf "%-40s -> %S\n"
        (Middlebox.Obfuscation.strategy_name strategy)
        variant)
    Middlebox.Obfuscation.strategies;
  print_newline ();
  Middlebox.Obfuscation.render Format.std_formatter;
  print_newline ();
  Middlebox.Evasion.render Format.std_formatter;

  (* 2. The same evasion at the wire level: a full TLS 1.2 handshake is
     captured and inspected. *)
  print_newline ();
  print_endline "== Wire-level inspection (TLS 1.2 handshake capture) ==";
  let issuer_kp = X509.Certificate.mock_keypair ~seed:"wire-demo-ca" () in
  let server_cert org =
    let tbs =
      X509.Certificate.make_tbs
        ~issuer:(X509.Dn.of_list [ (X509.Attr.Organization_name, "Wire Demo CA") ])
        ~subject:
          (X509.Dn.of_list
             [ (X509.Attr.Organization_name, org);
               (X509.Attr.Common_name, "service.evil-entity.test") ])
        ~not_before:(Asn1.Time.make 2025 1 1) ~not_after:(Asn1.Time.make 2025 4 1)
        ~spki:(X509.Certificate.keypair_spki issuer_kp)
        ~sig_alg:X509.Certificate.Oids.mock_signature
        ~extensions:
          [ X509.Extension.subject_alt_name
              [ X509.General_name.Dns_name "service.evil-entity.test" ] ]
        ()
    in
    X509.Certificate.sign issuer_kp tbs
  in
  let rules = [ { Middlebox.Engine.field = `Org; pattern = blocked } ] in
  let run label org =
    let client, server =
      Middlebox.Inspect.tls_session ~sni:"service.evil-entity.test" ~seed:77
        [ server_cert org ]
    in
    Printf.printf "%-28s" label;
    List.iter
      (fun engine ->
        let v =
          Middlebox.Inspect.inspect engine ~rules ~client_flow:client
            ~server_flow:server
        in
        Printf.printf " | %-8s %s" v.Middlebox.Inspect.engine
          (if v.Middlebox.Inspect.blocked then "BLOCK" else "pass "))
      Middlebox.Engine.all;
    print_newline ()
  in
  run "exact subject O" blocked;
  let g2 = Ucrypto.Prng.create 4242 in
  run "whitespace variant"
    (Middlebox.Obfuscation.apply g2 Middlebox.Obfuscation.Whitespace_substitution blocked);

  (* 3. Defender-side counterplay: variant detection with the
     skeleton/normalization key from the paper's Table 3 analysis. *)
  print_newline ();
  print_endline "== Defender-side variant detection ==";
  let g = Ucrypto.Prng.create 2026 in
  List.iter
    (fun strategy ->
      let variant = Middlebox.Obfuscation.apply g strategy blocked in
      Printf.printf "%-40s variant %-28S detected: %b\n"
        (Middlebox.Obfuscation.strategy_name strategy)
        variant
        (Middlebox.Obfuscation.is_variant_pair blocked variant))
    Middlebox.Obfuscation.strategies
