(* CT monitor audit: build a real CT log (Merkle tree, SCTs, inclusion
   proofs), feed it to the five monitor simulators, and walk through the
   §6.1 misleading-CT-monitors threat.

   Run with: dune exec examples/ct_monitor_audit.exe *)

module Monitor = Monitors.Monitor

let () =
  (* 1. A CT log with genuine Merkle machinery. *)
  let log = Ctlog.Log.create ~name:"example-log-2025" in
  let ca = X509.Certificate.mock_keypair ~seed:"monitor-example-ca" () in
  let issue domains cn =
    let tbs =
      X509.Certificate.make_tbs
        ~issuer:(X509.Dn.of_list [ (X509.Attr.Organization_name, "Example CA") ])
        ~subject:(X509.Dn.of_list [ (X509.Attr.Common_name, cn) ])
        ~not_before:(Asn1.Time.make 2025 1 1) ~not_after:(Asn1.Time.make 2025 4 1)
        ~spki:(X509.Certificate.keypair_spki ca)
        ~sig_alg:X509.Certificate.Oids.mock_signature
        ~extensions:
          [ X509.Extension.subject_alt_name
              (List.map (fun d -> X509.General_name.Dns_name d) domains) ]
        ()
    in
    X509.Certificate.sign ca tbs
  in
  let legit = issue [ "shop.victim-corp.com" ] "shop.victim-corp.com" in
  let forged = issue [ "shop.victim-corp.com\x00.evil.io" ] "shop.victim-corp.com\x00.evil.io" in
  let sct1 = Ctlog.Log.add_chain log legit.X509.Certificate.der in
  let sct2 = Ctlog.Log.add_chain log forged.X509.Certificate.der in
  Printf.printf "log %s: %d entries, tree head %s...\n"
    (String.sub (Ctlog.Log.log_id log) 0 4 |> String.to_seq |> Seq.map (fun c -> Printf.sprintf "%02x" (Char.code c)) |> List.of_seq |> String.concat "")
    (Ctlog.Log.size log)
    (String.sub
       (Ctlog.Log.tree_head log |> String.to_seq
        |> Seq.map (fun c -> Printf.sprintf "%02x" (Char.code c))
        |> List.of_seq |> String.concat "")
       0 16);
  assert (Ctlog.Log.verify_sct log ~der:legit.X509.Certificate.der sct1);
  assert (Ctlog.Log.verify_sct log ~der:forged.X509.Certificate.der sct2);

  (* Inclusion proof for the forged certificate: the log is honest. *)
  let proof = Ctlog.Log.prove_inclusion log 1 in
  assert
    (Ctlog.Merkle.verify_inclusion
       ~leaf:("\x00" ^ forged.X509.Certificate.der)
       ~index:1 ~size:(Ctlog.Log.size log) ~proof ~root:(Ctlog.Log.tree_head log));
  Printf.printf "forged certificate IS correctly logged (inclusion proof verifies)\n\n";

  (* 2. Monitors index the log; the owner queries for their domain. *)
  List.iter
    (fun prof ->
      let m = Monitor.create prof in
      Monitor.ingest_log m log;
      let visible =
        match Monitor.search m "shop.victim-corp.com" with
        | Monitor.Refused r -> Printf.sprintf "query refused (%s)" r
        | Monitor.Results certs ->
            Printf.sprintf "%d result(s); forged visible: %b" (List.length certs)
              (List.exists
                 (fun c ->
                   List.exists (fun d -> String.length d > 21) (X509.Certificate.san_dns_names c))
                 certs)
      in
      Printf.printf "%-18s owner query -> %s\n" prof.Monitor.name visible)
    Monitor.all;
  print_newline ();
  print_endline
    "Monitors without fuzzy search never surface the NUL-polluted forgery even\n\
     though the log proves its inclusion — the CT-monitor-misleading threat.";
  Monitors.Audit.render Format.std_formatter
