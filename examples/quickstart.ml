(* Quickstart: issue a Unicert, round-trip it through DER/PEM, and lint
   it against the 95 Unicert constraint rules.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* 1. Create an issuing CA key and a leaf key. *)
  let ca_key = X509.Certificate.mock_keypair ~seed:"quickstart-ca" () in
  let leaf_key = X509.Certificate.mock_keypair ~seed:"quickstart-leaf" () in

  (* 2. Describe the subject: a German bookshop with an IDN. *)
  let domain_utf8 = "b\xC3\xBCcher-m\xC3\xBCller.de" in
  let domain =
    match Idna.to_ascii domain_utf8 with
    | Ok a -> a
    | Error _ -> failwith "IDN conversion failed"
  in
  Printf.printf "IDN %s -> A-label form %s\n" domain_utf8 domain;

  let subject =
    X509.Dn.of_list
      [ (X509.Attr.Country_name, "DE");
        (X509.Attr.Organization_name, "B\xC3\xBCcher M\xC3\xBCller GmbH");
        (X509.Attr.Common_name, domain) ]
  in
  let issuer =
    X509.Dn.of_list
      [ (X509.Attr.Country_name, "US"); (X509.Attr.Organization_name, "Quickstart CA") ]
  in

  (* 3. Assemble and sign the certificate. *)
  let tbs =
    X509.Certificate.make_tbs ~issuer ~subject
      ~not_before:(Asn1.Time.make 2025 1 1)
      ~not_after:(Asn1.Time.make 2025 4 1)
      ~spki:(X509.Certificate.keypair_spki leaf_key)
      ~sig_alg:X509.Certificate.Oids.mock_signature
      ~extensions:
        [ X509.Extension.subject_alt_name [ X509.General_name.Dns_name domain ];
          X509.Extension.key_usage 0x05 ]
      ()
  in
  let cert = X509.Certificate.sign ca_key tbs in
  Printf.printf "issued %d-byte certificate; subject: %s\n"
    (String.length cert.X509.Certificate.der)
    (X509.Dn.to_string cert.X509.Certificate.tbs.X509.Certificate.subject);

  (* 4. PEM round trip. *)
  let pem = X509.Certificate.to_pem cert in
  (match X509.Certificate.of_pem pem with
  | Ok reparsed ->
      assert (X509.Certificate.verify
                ~issuer_spki:(X509.Certificate.keypair_spki ca_key) reparsed);
      Printf.printf "PEM round trip and signature verification: OK\n"
  | Error m -> failwith (Faults.Error.to_string m));

  (* 5. Lint it. *)
  let findings = Lint.Registry.noncompliant ~issued:(Asn1.Time.make 2025 1 1) cert in
  Printf.printf "lint findings: %d\n" (List.length findings);

  (* 6. Now a noncompliant variant: a NUL inside the CN. *)
  let bad_subject =
    X509.Dn.single
      [ X509.Dn.atv_raw ~st:Asn1.Str_type.Printable_string X509.Attr.Common_name
          ("evil\x00" ^ domain) ]
  in
  let bad = X509.Certificate.sign ca_key { tbs with X509.Certificate.subject = bad_subject } in
  let findings = Lint.Registry.noncompliant ~issued:(Asn1.Time.make 2025 1 1) bad in
  Printf.printf "NUL-in-CN variant fails %d lints:\n" (List.length findings);
  List.iter
    (fun (f : Lint.finding) -> Printf.printf "  - %s\n" f.Lint.lint.Lint.name)
    findings
