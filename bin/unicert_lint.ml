(* unicert-lint: run the 95-rule Unicert linter over PEM/DER certificate
   files, zlint-style.  With no files, lints a freshly generated corpus
   sample and prints the per-lint histogram. *)

open Cmdliner

let load_cert path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let bytes = really_input_string ic n in
  close_in ic;
  if String.length bytes > 10 && String.sub bytes 0 10 = "-----BEGIN" then
    X509.Certificate.of_pem bytes
  else X509.Certificate.parse bytes

let lint_file ~issued ~ignore_dates path =
  match load_cert path with
  | Error m -> Printf.printf "%s: PARSE ERROR: %s
" path (Faults.Error.to_string m)
  | Ok cert ->
      let findings =
        Lint.Registry.noncompliant ~respect_effective_dates:(not ignore_dates)
          ~issued cert
      in
      if findings = [] then Printf.printf "%s: compliant (0 findings)\n" path
      else begin
        Printf.printf "%s: %d findings\n" path (List.length findings);
        List.iter
          (fun (f : Lint.finding) ->
            let details =
              match f.Lint.status with
              | Lint.Fail d | Lint.Warn d -> d
              | Lint.Na | Lint.Pass -> []
            in
            Printf.printf "  [%s] %s\n"
              (match Lint.severity f.Lint.lint with
              | Lint.Error -> "ERROR"
              | Lint.Warning -> "WARN ")
              f.Lint.lint.Lint.name;
            List.iter (fun d -> Printf.printf "      %s\n" d) details)
          findings
      end

exception Abort of string

let lint_corpus ~scale ~seed ~ignore_dates (fault : Fault_cli.t) =
  let policy = fault.Fault_cli.policy in
  Lint.Registry.set_breaker_threshold policy.Faults.Policy.breaker_threshold;
  let quarantine =
    Option.map
      (fun dir -> Faults.Quarantine.open_ ~dir ~run_seed:seed)
      policy.Faults.Policy.quarantine_dir
  in
  let counts = Hashtbl.create 64 in
  let nc = ref 0 and total = ref 0 and faulted = ref 0 in
  let aborted = ref None in
  let record ~index ~der error =
    incr faulted;
    Faults.Error.observe error;
    Option.iter (fun q -> Faults.Quarantine.record q ~index ~error ~der) quarantine;
    if policy.Faults.Policy.fail_fast then
      raise (Abort (Printf.sprintf "fail-fast: %s" (Faults.Error.to_string error)));
    match policy.Faults.Policy.max_errors with
    | Some m when !faulted >= m ->
        raise (Abort (Printf.sprintf "max-errors: %d errors reached the limit" m))
    | _ -> ()
  in
  (try
     Ctlog.Dataset.iter_deliveries ~scale
       ?mutator:(Fault_cli.mutator ~default_seed:seed fault)
       ~drop:fault.Fault_cli.drop ~seed (fun index delivery ->
         match delivery with
         | Ctlog.Dataset.Corrupt { der; error; _ } -> record ~index ~der error
         | Ctlog.Dataset.Entry e -> (
             incr total;
             match
               Lint.Registry.noncompliant
                 ~respect_effective_dates:(not ignore_dates)
                 ~issued:e.Ctlog.Dataset.issued e.Ctlog.Dataset.cert
             with
             | findings ->
                 if findings <> [] then begin
                   incr nc;
                   List.iter
                     (fun (f : Lint.finding) ->
                       Hashtbl.replace counts f.Lint.lint.Lint.name
                         (1 + Option.value ~default:0 (Hashtbl.find_opt counts f.Lint.lint.Lint.name)))
                     findings
                 end
             | exception (Abort _ as e) -> raise e
             | exception exn when Faults.Isolation.enabled () ->
                 record ~index ~der:e.Ctlog.Dataset.cert.X509.Certificate.der
                   (Faults.Error.of_exn ~stage:"lint" exn)))
   with Abort reason -> aborted := Some reason);
  Option.iter Faults.Quarantine.close quarantine;
  Printf.printf "linted %d generated Unicerts: %d noncompliant (%.2f%%)\n" !total !nc
    (100.0 *. float_of_int !nc /. float_of_int !total);
  if !faulted > 0 then
    Printf.printf "  %d faulted certificate(s)%s\n" !faulted
      (match policy.Faults.Policy.quarantine_dir with
      | Some dir -> Printf.sprintf " quarantined under %s" dir
      | None -> "");
  List.iter
    (fun (name, crashes) ->
      Printf.printf "  degraded lint: %s (breaker open, %d crashes)\n" name crashes)
    (Lint.Registry.degraded ());
  (match !aborted with
  | Some reason ->
      Printf.eprintf "error: run aborted: %s\n" reason;
      exit 3
  | None -> ());
  (* Descending count, ties broken by name: deterministic across runs. *)
  let rows =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) counts []
    |> List.sort (fun (ka, va) (kb, vb) ->
           match compare vb va with 0 -> String.compare ka kb | c -> c)
  in
  List.iter (fun (k, v) -> Printf.printf "  %-55s %d\n" k v) rows;
  let findings_total = List.fold_left (fun acc (_, v) -> acc + v) 0 rows in
  Printf.printf "  %-55s %d findings across %d lints\n" "TOTAL" findings_total
    (List.length rows)

let list_rules () =
  Lint.Rulebook.render_catalogue Format.std_formatter

let json_findings path findings =
  Printf.printf "{\"file\": \"%s\", \"findings\": [" path;
  List.iteri
    (fun i (f : Lint.finding) ->
      (match Lint.Rulebook.covering_lint f.Lint.lint.Lint.name with
      | Some rule ->
          if i > 0 then print_string ", ";
          Format.printf "%a" Lint.Rulebook.render_json rule
      | None -> ()))
    findings;
  print_string "]}\n"

let run files corpus scale seed ignore_dates issued_str list_lints json fault
    metrics progress no_progress =
  if progress then Obs.Progress.set_override (Some true)
  else if no_progress then Obs.Progress.set_override (Some false);
  let issued =
    match Asn1.Time.of_generalized (issued_str ^ "000000Z") with
    | Ok t -> t
    | Error _ -> Asn1.Time.make 2024 6 1
  in
  if list_lints then list_rules ()
  else if corpus || files = [] then lint_corpus ~scale ~seed ~ignore_dates fault
  else if json then
    List.iter
      (fun path ->
        match load_cert path with
        | Error m ->
            Printf.printf "{\"file\": \"%s\", \"error\": \"%s\"}\n" path
              (Faults.Error.to_string m)
        | Ok cert ->
            json_findings path
              (Lint.Registry.noncompliant ~respect_effective_dates:(not ignore_dates)
                 ~issued cert))
      files
  else List.iter (lint_file ~issued ~ignore_dates) files;
  Option.iter
    (fun file ->
      try Obs.Export.write_file Obs.Registry.default file
      with Sys_error msg ->
        Printf.eprintf "error: cannot write metrics: %s\n" msg;
        exit 1)
    metrics

let files = Arg.(value & pos_all file [] & info [] ~docv:"CERT" ~doc:"PEM or DER certificate files")
let scale = Arg.(value & opt int 2000 & info [ "scale" ] ~doc:"Generated corpus size when no files are given")
let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Corpus seed")
let ignore_dates =
  Arg.(value & flag & info [ "ignore-effective-dates" ] ~doc:"Apply every lint regardless of its effective date")
let issued =
  Arg.(value & opt string "20240601" & info [ "issued" ] ~doc:"Assumed issuance date (YYYYMMDD) for file linting")
let list_lints =
  Arg.(value & flag & info [ "list" ] ~doc:"Print the 95-rule catalogue as JSON and exit")
let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit findings as JSON")
let corpus =
  Arg.(value & flag & info [ "corpus" ] ~doc:"Lint a freshly generated corpus sample (the default when no files are given)")
let metrics =
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE"
       ~doc:"Write collected telemetry at exit: Prometheus text, or JSON when FILE ends in .json")
let progress =
  Arg.(value & flag & info [ "progress" ] ~doc:"Force progress reporting on (default: only on a TTY, and not under OBS_QUIET)")
let no_progress =
  Arg.(value & flag & info [ "no-progress" ] ~doc:"Force progress reporting off")

let cmd =
  let doc = "lint X.509 certificates against the 95 Unicert constraint rules" in
  Cmd.v (Cmd.info "unicert-lint" ~doc)
    Term.(const run $ files $ corpus $ scale $ seed $ ignore_dates $ issued
          $ list_lints $ json $ Fault_cli.term $ metrics $ progress
          $ no_progress)

let () = exit (Cmd.eval cmd)
