(* unicert-lint: run the 95-rule Unicert linter over PEM/DER certificate
   files, zlint-style.  With no files, lints a freshly generated corpus
   sample and prints the per-lint histogram. *)

open Cmdliner

let load_cert path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let bytes = really_input_string ic n in
  close_in ic;
  if String.length bytes > 10 && String.sub bytes 0 10 = "-----BEGIN" then
    X509.Certificate.of_pem bytes
  else X509.Certificate.parse bytes

let lint_file ~issued ~ignore_dates path =
  match load_cert path with
  | Error m -> Printf.printf "%s: PARSE ERROR: %s
" path (Faults.Error.to_string m)
  | Ok cert ->
      let findings =
        Lint.Registry.noncompliant ~respect_effective_dates:(not ignore_dates)
          ~issued cert
      in
      if findings = [] then Printf.printf "%s: compliant (0 findings)\n" path
      else begin
        Printf.printf "%s: %d findings\n" path (List.length findings);
        List.iter
          (fun (f : Lint.finding) ->
            let details =
              match f.Lint.status with
              | Lint.Fail d | Lint.Warn d -> d
              | Lint.Na | Lint.Pass -> []
            in
            Printf.printf "  [%s] %s\n"
              (match Lint.severity f.Lint.lint with
              | Lint.Error -> "ERROR"
              | Lint.Warning -> "WARN ")
              f.Lint.lint.Lint.name;
            List.iter (fun d -> Printf.printf "      %s\n" d) details)
          findings
      end

exception Abort of string
exception Shard_stop

type tally = {
  counts : (string, int) Hashtbl.t;
  mutable nc : int;
  mutable total : int;
  mutable faulted : int;
}

let fresh_tally () = { counts = Hashtbl.create 64; nc = 0; total = 0; faulted = 0 }

let merge_tally dst src =
  dst.nc <- dst.nc + src.nc;
  dst.total <- dst.total + src.total;
  dst.faulted <- dst.faulted + src.faulted;
  Hashtbl.iter
    (fun k v ->
      Hashtbl.replace dst.counts k
        (v + Option.value ~default:0 (Hashtbl.find_opt dst.counts k)))
    src.counts

(* One certificate through the linter, behind the error boundary.
   [record] raises Abort (sequential) or Shard_stop (parallel); both
   must pass through untouched. *)
let lint_one ~ignore_dates t record index (e : Ctlog.Dataset.entry) =
  t.total <- t.total + 1;
  (* This path runs the linter only, so the slow-cert log's dominating
     stage is always "lint" here. *)
  let profiling = Obs.Profile.enabled () in
  let t0 = if profiling then Unix.gettimeofday () else 0. in
  match
    Lint.Registry.noncompliant ~respect_effective_dates:(not ignore_dates)
      ~issued:e.Ctlog.Dataset.issued e.Ctlog.Dataset.cert
  with
  | findings ->
      if profiling then
        Obs.Profile.note_slow ~index
          ~seconds:(Unix.gettimeofday () -. t0)
          ~stage:"lint";
      if findings <> [] then begin
        t.nc <- t.nc + 1;
        List.iter
          (fun (f : Lint.finding) ->
            Hashtbl.replace t.counts f.Lint.lint.Lint.name
              (1 + Option.value ~default:0 (Hashtbl.find_opt t.counts f.Lint.lint.Lint.name)))
          findings
      end
  | exception (Abort _ as ex) -> raise ex
  | exception (Shard_stop as ex) -> raise ex
  | exception exn when Faults.Isolation.enabled () ->
      record ~index ~der:e.Ctlog.Dataset.cert.X509.Certificate.der
        (Faults.Error.of_exn ~stage:"lint" exn)

let lint_corpus ~scale ~seed ~ignore_dates (fault : Fault_cli.t) =
  let policy = fault.Fault_cli.policy in
  let jobs = fault.Fault_cli.jobs in
  Lint.Registry.set_breaker_threshold policy.Faults.Policy.breaker_threshold;
  let mutator = Fault_cli.mutator ~default_seed:seed fault in
  let aborted = ref None in
  let coverage = ref [] in
  Fault_cli.warn_stale_cursors fault ~scale;
  let t =
    Fault_cli.guard @@ fun () ->
    match fault.Fault_cli.store with
    | Some dir ->
        (* Store-backed pass: the full pipeline lands (or replays) the
           corpus in the store; project its aggregates into the tally
           this binary prints.  Stored rows encode dated findings, so
           the date-ablation flag cannot apply to them. *)
        if ignore_dates then begin
          Printf.eprintf
            "error: --ignore-effective-dates is not supported with --store \
             (stored analysis rows encode effective-dated findings)\n";
          exit 2
        end;
        let source =
          match fault.Fault_cli.fetch with
          | Some cfg -> Unicert.Pipeline.Fetch cfg
          | None -> Unicert.Pipeline.Generate
        in
        let p =
          Unicert.Pipeline.run ~scale ~seed ~policy
            ?mutator:(Fault_cli.mutator ~default_seed:seed fault)
            ~drop:fault.Fault_cli.drop ~resume:fault.Fault_cli.resume ~jobs
            ~source ~store:dir ()
        in
        aborted := p.Unicert.Pipeline.faults.Unicert.Pipeline.aborted;
        coverage := p.Unicert.Pipeline.coverage;
        let t = fresh_tally () in
        t.total <- p.Unicert.Pipeline.total;
        t.nc <- p.Unicert.Pipeline.nc_total;
        t.faulted <-
          p.Unicert.Pipeline.faults.Unicert.Pipeline.fault_errors;
        Hashtbl.iter
          (fun k v -> Hashtbl.replace t.counts k v)
          p.Unicert.Pipeline.lints;
        t
    | None -> (
    match fault.Fault_cli.fetch with
    | Some cfg ->
        (* Fetch source: retrieve the corpus from simulated CT logs
           (parallelism lives in the fetch), then tally the delivered
           stream in index order. *)
        let cfg =
          { cfg with
            Ctlog.Fetch.breaker_threshold =
              policy.Faults.Policy.breaker_threshold }
        in
        let items, covs =
          Ctlog.Fetch.corpus ~scale ~seed ?mutator ~drop:fault.Fault_cli.drop
            ?checkpoint:policy.Faults.Policy.checkpoint_file
            ~resume:fault.Fault_cli.resume ~jobs cfg
        in
        coverage := covs;
        let quarantine =
          Option.map
            (fun dir -> Faults.Quarantine.open_ ~dir ~run_seed:seed)
            policy.Faults.Policy.quarantine_dir
        in
        let t = fresh_tally () in
        let record ~index ~der error =
          t.faulted <- t.faulted + 1;
          Faults.Error.observe error;
          Option.iter (fun q -> Faults.Quarantine.record q ~index ~error ~der) quarantine;
          if policy.Faults.Policy.fail_fast then
            raise (Abort (Printf.sprintf "fail-fast: %s" (Faults.Error.to_string error)));
          match policy.Faults.Policy.max_errors with
          | Some m when t.faulted >= m ->
              raise (Abort (Printf.sprintf "max-errors: %d errors reached the limit" m))
          | _ -> ()
        in
        (try
           List.iter
             (fun item ->
               match item with
               | Ctlog.Fetch.Got (index, e) ->
                   lint_one ~ignore_dates t record index e
               | Ctlog.Fetch.Undecodable (index, der, error) ->
                   record ~index ~der error)
             items
         with Abort reason -> aborted := Some reason);
        Option.iter Faults.Quarantine.close quarantine;
        t
    | None ->
    if jobs > 1 && scale > 1 then begin
      (* Parallel pass: contiguous shards, per-shard tallies merged in
         index order — same stdout as the sequential pass for every
         jobs value (on a completed run). *)
      Ctlog.Dataset.prewarm ();
      Faults.Error.prewarm ();
      Faults.Breaker.prewarm ();
      Faults.Injector.prewarm ();
      Faults.Quarantine.prewarm ();
      let stop_flag = Atomic.make false in
      let global_errors = Atomic.make 0 in
      let abort_lock = Mutex.create () in
      let set_abort reason =
        Mutex.protect abort_lock (fun () ->
            if !aborted = None then aborted := Some reason);
        Atomic.set stop_flag true
      in
      let nshards = List.length (Par.shards ~jobs scale) in
      let parts =
        Par.map_shards ~jobs ~scale (fun ~shard ~lo ~hi ->
            let t = fresh_tally () in
            let quarantine =
              Option.map
                (fun dir -> Faults.Quarantine.open_shard ~dir ~run_seed:seed ~shard)
                policy.Faults.Policy.quarantine_dir
            in
            let record ~index ~der error =
              t.faulted <- t.faulted + 1;
              Faults.Error.observe error;
              Option.iter
                (fun q -> Faults.Quarantine.record q ~index ~error ~der)
                quarantine;
              let seen = 1 + Atomic.fetch_and_add global_errors 1 in
              if policy.Faults.Policy.fail_fast then begin
                set_abort
                  (Printf.sprintf "fail-fast: %s" (Faults.Error.to_string error));
                raise Shard_stop
              end;
              match policy.Faults.Policy.max_errors with
              | Some m when seen >= m ->
                  set_abort
                    (Printf.sprintf "max-errors: %d errors reached the limit" m);
                  raise Shard_stop
              | _ -> ()
            in
            Fun.protect
              ~finally:(fun () -> Option.iter Faults.Quarantine.close quarantine)
              (fun () ->
                try
                  Ctlog.Dataset.iter_deliveries ~scale ~start:lo ~stop:hi ?mutator
                    ~drop:fault.Fault_cli.drop ~seed (fun index delivery ->
                      if Atomic.get stop_flag then raise Shard_stop;
                      match delivery with
                      | Ctlog.Dataset.Corrupt { der; error; _ } ->
                          record ~index ~der error
                      | Ctlog.Dataset.Entry e ->
                          lint_one ~ignore_dates t record index e)
                with Shard_stop -> ());
            t)
      in
      (match policy.Faults.Policy.quarantine_dir with
      | Some dir ->
          ignore (Faults.Quarantine.merge_shards ~dir ~run_seed:seed ~shards:nshards)
      | None -> ());
      let t = fresh_tally () in
      List.iter (merge_tally t) parts;
      t
    end
    else begin
      let quarantine =
        Option.map
          (fun dir -> Faults.Quarantine.open_ ~dir ~run_seed:seed)
          policy.Faults.Policy.quarantine_dir
      in
      let t = fresh_tally () in
      let record ~index ~der error =
        t.faulted <- t.faulted + 1;
        Faults.Error.observe error;
        Option.iter (fun q -> Faults.Quarantine.record q ~index ~error ~der) quarantine;
        if policy.Faults.Policy.fail_fast then
          raise (Abort (Printf.sprintf "fail-fast: %s" (Faults.Error.to_string error)));
        match policy.Faults.Policy.max_errors with
        | Some m when t.faulted >= m ->
            raise (Abort (Printf.sprintf "max-errors: %d errors reached the limit" m))
        | _ -> ()
      in
      (try
         Ctlog.Dataset.iter_deliveries ~scale ?mutator
           ~drop:fault.Fault_cli.drop ~seed (fun index delivery ->
             match delivery with
             | Ctlog.Dataset.Corrupt { der; error; _ } -> record ~index ~der error
             | Ctlog.Dataset.Entry e -> lint_one ~ignore_dates t record index e)
       with Abort reason -> aborted := Some reason);
      Option.iter Faults.Quarantine.close quarantine;
      t
    end)
  in
  Printf.printf "linted %d generated Unicerts: %d noncompliant (%.2f%%)\n" t.total t.nc
    (100.0 *. float_of_int t.nc /. float_of_int t.total);
  if t.faulted > 0 then
    Printf.printf "  %d faulted certificate(s)%s\n" t.faulted
      (match policy.Faults.Policy.quarantine_dir with
      | Some dir -> Printf.sprintf " quarantined under %s" dir
      | None -> "");
  List.iter
    (fun (name, crashes) ->
      Printf.printf "  degraded lint: %s (breaker open, %d crashes)\n" name crashes)
    (Lint.Registry.degraded ());
  (match !aborted with
  | Some reason ->
      Printf.eprintf "error: run aborted: %s\n" reason;
      Fault_cli.exit_via 3
  | None -> Fault_cli.cleanup_stale_cursors fault ~scale);
  (* Descending count, ties broken by name: deterministic across runs. *)
  let rows =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.counts []
    |> List.sort (fun (ka, va) (kb, vb) ->
           match compare vb va with 0 -> String.compare ka kb | c -> c)
  in
  List.iter (fun (k, v) -> Printf.printf "  %-55s %d\n" k v) rows;
  let findings_total = List.fold_left (fun acc (_, v) -> acc + v) 0 rows in
  Printf.printf "  %-55s %d findings across %d lints\n" "TOTAL" findings_total
    (List.length rows);
  match !coverage with
  | [] -> 0
  | covs ->
      let healthy =
        List.length (List.filter Ctlog.Fetch.coverage_complete covs)
      in
      let expected =
        List.fold_left (fun a (c : Ctlog.Fetch.coverage) -> a + c.Ctlog.Fetch.expected) 0 covs
      in
      let delivered =
        List.fold_left (fun a (c : Ctlog.Fetch.coverage) -> a + c.Ctlog.Fetch.delivered) 0 covs
      in
      let complete = healthy = List.length covs in
      Printf.printf "  coverage: %s %d/%d logs, %.1f%% entries\n"
        (if complete then "complete" else "degraded")
        healthy (List.length covs)
        (if expected = 0 then 100.0
         else 100.0 *. float_of_int delivered /. float_of_int expected);
      if complete then 0 else 4

let list_rules () =
  Lint.Rulebook.render_catalogue Format.std_formatter

let json_findings path findings =
  Printf.printf "{\"file\": \"%s\", \"findings\": [" path;
  List.iteri
    (fun i (f : Lint.finding) ->
      (match Lint.Rulebook.covering_lint f.Lint.lint.Lint.name with
      | Some rule ->
          if i > 0 then print_string ", ";
          Format.printf "%a" Lint.Rulebook.render_json rule
      | None -> ()))
    findings;
  print_string "]}\n"

let run files corpus scale seed ignore_dates issued_str list_lints json fault
    metrics progress no_progress =
  if progress then Obs.Progress.set_override (Some true)
  else if no_progress then Obs.Progress.set_override (Some false);
  Fault_cli.set_metrics metrics;
  let issued =
    match Asn1.Time.of_generalized (issued_str ^ "000000Z") with
    | Ok t -> t
    | Error _ -> Asn1.Time.make 2024 6 1
  in
  let exit_code = ref 0 in
  if list_lints then list_rules ()
  else if corpus || files = [] then
    exit_code := lint_corpus ~scale ~seed ~ignore_dates fault
  else if json then
    List.iter
      (fun path ->
        match load_cert path with
        | Error m ->
            Printf.printf "{\"file\": \"%s\", \"error\": \"%s\"}\n" path
              (Faults.Error.to_string m)
        | Ok cert ->
            json_findings path
              (Lint.Registry.noncompliant ~respect_effective_dates:(not ignore_dates)
                 ~issued cert))
      files
  else List.iter (lint_file ~issued ~ignore_dates) files;
  (* 4 = completed with degraded fetch coverage.  The funnel flushes
     metrics/trace on every path and applies the precedence law. *)
  if !exit_code <> 0 then
    Printf.eprintf "warning: degraded coverage: not every log delivered fully\n";
  Fault_cli.exit_via !exit_code

let files = Arg.(value & pos_all file [] & info [] ~docv:"CERT" ~doc:"PEM or DER certificate files")
let scale = Arg.(value & opt int 2000 & info [ "scale" ] ~doc:"Generated corpus size when no files are given")
let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Corpus seed")
let ignore_dates =
  Arg.(value & flag & info [ "ignore-effective-dates" ] ~doc:"Apply every lint regardless of its effective date")
let issued =
  Arg.(value & opt string "20240601" & info [ "issued" ] ~doc:"Assumed issuance date (YYYYMMDD) for file linting")
let list_lints =
  Arg.(value & flag & info [ "list" ] ~doc:"Print the 95-rule catalogue as JSON and exit")
let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit findings as JSON")
let corpus =
  Arg.(value & flag & info [ "corpus" ] ~doc:"Lint a freshly generated corpus sample (the default when no files are given)")
let metrics =
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE"
       ~doc:"Write collected telemetry at exit: Prometheus text, or JSON when FILE ends in .json")
let progress =
  Arg.(value & flag & info [ "progress" ] ~doc:"Force progress reporting on (default: only on a TTY, and not under OBS_QUIET)")
let no_progress =
  Arg.(value & flag & info [ "no-progress" ] ~doc:"Force progress reporting off")

let cmd =
  let doc = "lint X.509 certificates against the 95 Unicert constraint rules" in
  Cmd.v (Cmd.info "unicert-lint" ~doc)
    Term.(const run $ files $ corpus $ scale $ seed $ ignore_dates $ issued
          $ list_lints $ json $ Fault_cli.term $ metrics $ progress
          $ no_progress)

let () = exit (Cmd.eval cmd)
