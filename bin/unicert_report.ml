(* unicert-report: run one experiment by its DESIGN.md id. *)

open Cmdliner

let run id scale seed (fault : Fault_cli.t) metrics progress no_progress =
  if progress then Obs.Progress.set_override (Some true)
  else if no_progress then Obs.Progress.set_override (Some false);
  Tlsparsers.Harness.set_breaker_threshold
    fault.Fault_cli.policy.Faults.Policy.breaker_threshold;
  let ppf = Format.std_formatter in
  let aborted = ref None in
  let pipeline () =
    let t =
      Unicert.Pipeline.run ~scale ~seed ~policy:fault.Fault_cli.policy
        ?mutator:(Fault_cli.mutator ~default_seed:seed fault)
        ~drop:fault.Fault_cli.drop ~resume:fault.Fault_cli.resume
        ~jobs:fault.Fault_cli.jobs ()
    in
    aborted := t.Unicert.Pipeline.faults.Unicert.Pipeline.aborted;
    t
  in
  (match String.lowercase_ascii id with
  | "fig2" -> Unicert.Report.figure2 ppf (pipeline ())
  | "tab1" -> Unicert.Report.table1 ppf (pipeline ())
  | "tab2" -> Unicert.Report.table2 ppf (pipeline ())
  | "fig3" -> Unicert.Report.figure3 ppf (pipeline ())
  | "fig4" -> Unicert.Report.figure4 ppf (pipeline ())
  | "tab11" -> Unicert.Report.table11 ppf (pipeline ())
  | "sec51" -> Unicert.Report.section51 ppf (pipeline ())
  | "ablations" -> Unicert.Report.ablations ppf (pipeline ())
  | "summary" -> Unicert.Report.summary ppf (pipeline ())
  | "tab4" | "tab5" -> Tlsparsers.Harness.render ppf
  | "apis" -> Tlsparsers.Apis.render ppf
  | "rules" -> Lint.Rulebook.render_catalogue ppf
  | "tab6" -> Monitors.Audit.render ppf
  | "tab3" -> Middlebox.Obfuscation.render ppf
  | "sec62" -> Middlebox.Evasion.render ppf
  | "tab14" | "fig7" -> Unicert.Browsers.render ppf
  | "all" -> Unicert.Report.all ppf (pipeline ())
  | other ->
      Format.fprintf ppf
        "unknown experiment %S; ids: fig2 tab1 tab2 fig3 fig4 tab11 sec51 ablations \
         summary tab3 tab4 tab5 tab6 sec62 tab14 apis rules all@."
        other);
  Format.pp_print_flush ppf ();
  Option.iter
    (fun file ->
      try Obs.Export.write_file Obs.Registry.default file
      with Sys_error msg ->
        Printf.eprintf "error: cannot write metrics: %s\n" msg;
        exit 1)
    metrics;
  match !aborted with
  | Some reason ->
      Printf.eprintf "error: run aborted: %s\n" reason;
      exit 3
  | None -> ()

let id = Arg.(value & pos 0 string "summary" & info [] ~docv:"EXPERIMENT" ~doc:"Experiment id from DESIGN.md")
let scale = Arg.(value & opt int Ctlog.Dataset.default_scale & info [ "scale" ] ~doc:"Corpus size")
let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Corpus seed")
let metrics =
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE"
       ~doc:"Write collected telemetry at exit: Prometheus text, or JSON when FILE ends in .json")
let progress =
  Arg.(value & flag & info [ "progress" ] ~doc:"Force progress reporting on (default: only on a TTY, and not under OBS_QUIET)")
let no_progress =
  Arg.(value & flag & info [ "no-progress" ] ~doc:"Force progress reporting off")

let cmd =
  let doc = "regenerate one of the paper's tables or figures" in
  Cmd.v (Cmd.info "unicert-report" ~doc)
    Term.(const run $ id $ scale $ seed $ Fault_cli.term $ metrics $ progress
          $ no_progress)

let () = exit (Cmd.eval cmd)
