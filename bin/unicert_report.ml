(* unicert-report: run one experiment by its DESIGN.md id. *)

open Cmdliner

let run id scale seed (fault : Fault_cli.t) metrics progress no_progress =
  if progress then Obs.Progress.set_override (Some true)
  else if no_progress then Obs.Progress.set_override (Some false);
  Fault_cli.set_metrics metrics;
  Tlsparsers.Harness.set_breaker_threshold
    fault.Fault_cli.policy.Faults.Policy.breaker_threshold;
  let ppf = Format.std_formatter in
  let aborted = ref None in
  let degraded = ref false in
  let source =
    match fault.Fault_cli.fetch with
    | Some cfg -> Unicert.Pipeline.Fetch cfg
    | None -> Unicert.Pipeline.Generate
  in
  Fault_cli.warn_stale_cursors fault ~scale;
  let pipeline () =
    let t =
      Fault_cli.guard (fun () ->
          Unicert.Pipeline.run ~scale ~seed ~policy:fault.Fault_cli.policy
            ?mutator:(Fault_cli.mutator ~default_seed:seed fault)
            ~drop:fault.Fault_cli.drop ~resume:fault.Fault_cli.resume
            ~jobs:fault.Fault_cli.jobs ~source ?store:fault.Fault_cli.store ())
    in
    aborted := t.Unicert.Pipeline.faults.Unicert.Pipeline.aborted;
    degraded := Unicert.Pipeline.coverage_degraded t;
    if !aborted = None then Fault_cli.cleanup_stale_cursors fault ~scale;
    t
  in
  (* Single-table ids annotate fetch coverage after their table ("all"
     already renders the section itself). *)
  let with_coverage render t =
    render ppf t;
    Unicert.Report.coverage ppf t
  in
  (match String.lowercase_ascii id with
  | "fig2" -> with_coverage Unicert.Report.figure2 (pipeline ())
  | "tab1" -> with_coverage Unicert.Report.table1 (pipeline ())
  | "tab2" -> with_coverage Unicert.Report.table2 (pipeline ())
  | "fig3" -> with_coverage Unicert.Report.figure3 (pipeline ())
  | "fig4" -> with_coverage Unicert.Report.figure4 (pipeline ())
  | "tab11" -> with_coverage Unicert.Report.table11 (pipeline ())
  | "sec51" -> with_coverage Unicert.Report.section51 (pipeline ())
  | "ablations" -> with_coverage Unicert.Report.ablations (pipeline ())
  | "summary" -> with_coverage Unicert.Report.summary (pipeline ())
  | "tab4" | "tab5" -> Tlsparsers.Harness.render ppf
  | "apis" -> Tlsparsers.Apis.render ppf
  | "rules" -> Lint.Rulebook.render_catalogue ppf
  | "tab6" -> Monitors.Audit.render ppf
  | "tab3" -> Middlebox.Obfuscation.render ppf
  | "sec62" -> Middlebox.Evasion.render ppf
  | "tab14" | "fig7" -> Unicert.Browsers.render ppf
  | "all" -> Unicert.Report.all ppf (pipeline ())
  | other ->
      Format.fprintf ppf
        "unknown experiment %S; ids: fig2 tab1 tab2 fig3 fig4 tab11 sec51 ablations \
         summary tab3 tab4 tab5 tab6 sec62 tab14 apis rules all@."
        other);
  Format.pp_print_flush ppf ();
  (* Exit codes: 3 = the pass aborted (fail-fast / max-errors), 4 = it
     completed but with degraded fetch coverage (abandoned log, split
     view, page gaps) — distinguishable by callers and CI.  The funnel
     flushes metrics/trace on every path and applies the precedence
     law (a flush failure never masks 3/4). *)
  let code =
    match !aborted with
    | Some reason ->
        Printf.eprintf "error: run aborted: %s\n" reason;
        3
    | None ->
        if !degraded then begin
          Printf.eprintf
            "warning: degraded coverage: see the Coverage section\n";
          4
        end
        else 0
  in
  Fault_cli.exit_via code

let id = Arg.(value & pos 0 string "summary" & info [] ~docv:"EXPERIMENT" ~doc:"Experiment id from DESIGN.md")
let scale = Arg.(value & opt int Ctlog.Dataset.default_scale & info [ "scale" ] ~doc:"Corpus size")
let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Corpus seed")
let metrics =
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE"
       ~doc:"Write collected telemetry at exit: Prometheus text, or JSON when FILE ends in .json")
let progress =
  Arg.(value & flag & info [ "progress" ] ~doc:"Force progress reporting on (default: only on a TTY, and not under OBS_QUIET)")
let no_progress =
  Arg.(value & flag & info [ "no-progress" ] ~doc:"Force progress reporting off")

let cmd =
  let doc = "regenerate one of the paper's tables or figures" in
  Cmd.v (Cmd.info "unicert-report" ~doc)
    Term.(const run $ id $ scale $ seed $ Fault_cli.term $ metrics $ progress
          $ no_progress)

let () = exit (Cmd.eval cmd)
