(* unicert-gen: emit test Unicerts as PEM — either corpus samples from
   the calibrated generator, or single-field mutants in the style of the
   paper's §3.2 test certificates. *)

open Cmdliner

let emit_pem cert = print_string (X509.Certificate.to_pem cert)

(* One shard's view of the stream, in index order.  Corrupted blobs no
   longer parse, so they cannot be emitted as PEM; they go to
   quarantine instead (written by the coordinator, in index order). *)
type corpus_item =
  | Qual of string                          (* PEM of a qualifying entry *)
  | Corr of int * string * Faults.Error.t   (* index, DER, decode error *)

exception Shard_done

(* Store-backed corpus emission: the pipeline lands (or warm-replays)
   the corpus in the crash-safe store, then the first [count]
   certificates are emitted from their durable DER — byte-identical to
   a live generate run's stdout. *)
let run_corpus_store count seed ~dir (fault : Fault_cli.t) =
  let policy = fault.Fault_cli.policy in
  let source =
    match fault.Fault_cli.fetch with
    | Some cfg -> Unicert.Pipeline.Fetch cfg
    | None -> Unicert.Pipeline.Generate
  in
  let p =
    Unicert.Pipeline.run ~scale:count ~seed ~policy
      ?mutator:(Fault_cli.mutator ~default_seed:seed fault)
      ~drop:fault.Fault_cli.drop ~resume:fault.Fault_cli.resume
      ~jobs:fault.Fault_cli.jobs ~source ~store:dir ()
  in
  (match p.Unicert.Pipeline.faults.Unicert.Pipeline.aborted with
  | Some reason ->
      Printf.eprintf "error: run aborted: %s\n" reason;
      Fault_cli.exit_via 3
  | None -> ());
  let emitted = ref 0 in
  let db = Store.Db.open_ro ~dir in
  (try
     Store.Db.iter_pairs db (fun recd _row ->
         match recd with
         | Store.Db.Fault _ -> ()
         | Store.Db.Cert { index; der } -> (
             if !emitted >= count then raise Exit;
             match X509.Certificate.parse der with
             | Ok cert ->
                 incr emitted;
                 emit_pem cert
             | Error e ->
                 Printf.eprintf
                   "error: stored certificate %d unparseable: %s; run \
                    `unicert-store fsck`\n"
                   index (Faults.Error.to_string e);
                 Fault_cli.exit_via 2))
   with Exit -> ());
  let faulted = p.Unicert.Pipeline.faults.Unicert.Pipeline.fault_errors in
  if faulted > 0 then
    Printf.eprintf "note: %d corrupted certificate(s) withheld%s\n" faulted
      (match policy.Faults.Policy.quarantine_dir with
      | Some qdir -> Printf.sprintf " and quarantined under %s" qdir
      | None -> "");
  if !emitted < count then
    Printf.eprintf "warning: only %d of %d requested certificates emitted\n"
      !emitted count;
  if Unicert.Pipeline.coverage_degraded p then begin
    Printf.eprintf "warning: degraded coverage: not every log delivered fully\n";
    4
  end
  else 0

let run_corpus count seed flawed_only (fault : Fault_cli.t) =
  match fault.Fault_cli.store with
  | Some dir ->
      if flawed_only then begin
        (* Flawed filtering would leave index gaps in the store's
           contiguous spans; it stays a live-generation feature. *)
        Printf.eprintf "error: --flawed is not supported with --store\n";
        Fault_cli.exit_via 2
      end;
      run_corpus_store count seed ~dir fault
  | None ->
  let policy = fault.Fault_cli.policy in
  let jobs = fault.Fault_cli.jobs in
  let mutator = Fault_cli.mutator ~default_seed:seed fault in
  let quarantine =
    Option.map
      (fun dir -> Faults.Quarantine.open_ ~dir ~run_seed:seed)
      policy.Faults.Policy.quarantine_dir
  in
  let emitted = ref 0 and faulted = ref 0 in
  let degraded = ref false in
  (* Over-generate: keep only flawed entries when asked. *)
  let scale = if flawed_only then count * 400 else count in
  (match fault.Fault_cli.fetch with
  | Some cfg ->
      (* Fetch source: the corpus comes off simulated CT logs; flawed
         filtering would need over-fetching the whole partition, so it
         stays a generate-source feature. *)
      if flawed_only then begin
        Printf.eprintf "error: --flawed is not supported with --source fetch\n";
        Fault_cli.exit_via 2
      end;
      let cfg =
        { cfg with
          Ctlog.Fetch.breaker_threshold =
            policy.Faults.Policy.breaker_threshold }
      in
      let items, covs =
        Ctlog.Fetch.corpus ~scale ~seed ?mutator ~drop:fault.Fault_cli.drop
          ?checkpoint:policy.Faults.Policy.checkpoint_file
          ~resume:fault.Fault_cli.resume ~jobs cfg
      in
      degraded :=
        List.exists (fun c -> not (Ctlog.Fetch.coverage_complete c)) covs;
      (try
         List.iter
           (fun item ->
             (match item with
             | Ctlog.Fetch.Got (_, e) ->
                 if !emitted < count then begin
                   incr emitted;
                   emit_pem e.Ctlog.Dataset.cert
                 end
             | Ctlog.Fetch.Undecodable (index, der, error) ->
                 incr faulted;
                 Faults.Error.observe error;
                 Option.iter
                   (fun q -> Faults.Quarantine.record q ~index ~error ~der)
                   quarantine);
             if !emitted >= count then raise Exit)
           items
       with Exit -> ())
  | None ->
  if jobs > 1 && scale > 1 then begin
    (* Shards collect; the coordinator replays the collected stream in
       index order, reproducing the sequential early-stop semantics
       (and stdout/quarantine bytes) exactly. *)
    Ctlog.Dataset.prewarm ();
    Faults.Error.prewarm ();
    Faults.Quarantine.prewarm ();
    let parts =
      Par.map_shards ~jobs ~scale (fun ~shard:_ ~lo ~hi ->
          let items = ref [] and quals = ref 0 in
          (try
             Ctlog.Dataset.iter_deliveries ~scale ~start:lo ~stop:hi ?mutator
               ~drop:fault.Fault_cli.drop ~seed (fun index delivery ->
                 (match delivery with
                 | Ctlog.Dataset.Corrupt { der; error; _ } ->
                     items := Corr (index, der, error) :: !items
                 | Ctlog.Dataset.Entry e ->
                     if (not flawed_only) || e.Ctlog.Dataset.flaws <> [] then begin
                       items :=
                         Qual (X509.Certificate.to_pem e.Ctlog.Dataset.cert)
                         :: !items;
                       incr quals
                     end);
                 (* Nothing past a shard's count-th qualifier can be
                    emitted or counted: the global cutoff never falls
                    later than a single shard's. *)
                 if !quals >= count then raise Shard_done)
           with Shard_done -> ());
          List.rev !items)
    in
    try
      List.iter
        (fun item ->
          match item with
          | Qual pem ->
              if !emitted < count then begin
                incr emitted;
                print_string pem
              end;
              if !emitted >= count then raise Exit
          | Corr (index, der, error) ->
              incr faulted;
              Faults.Error.observe error;
              Option.iter
                (fun q -> Faults.Quarantine.record q ~index ~error ~der)
                quarantine)
        (List.concat parts)
    with Exit -> ()
  end
  else begin
    try
      Ctlog.Dataset.iter_deliveries ~scale ?mutator
        ~drop:fault.Fault_cli.drop ~seed (fun index delivery ->
          (match delivery with
          | Ctlog.Dataset.Corrupt { der; error; _ } ->
              incr faulted;
              Faults.Error.observe error;
              Option.iter
                (fun q -> Faults.Quarantine.record q ~index ~error ~der)
                quarantine
          | Ctlog.Dataset.Entry e ->
              if
                !emitted < count
                && ((not flawed_only) || e.Ctlog.Dataset.flaws <> [])
              then begin
                incr emitted;
                emit_pem e.Ctlog.Dataset.cert
              end);
          if !emitted >= count then raise Exit)
    with Exit -> ()
  end);
  Option.iter Faults.Quarantine.close quarantine;
  if !faulted > 0 then
    Printf.eprintf "note: %d corrupted certificate(s) withheld%s\n" !faulted
      (match policy.Faults.Policy.quarantine_dir with
      | Some dir -> Printf.sprintf " and quarantined under %s" dir
      | None -> "");
  if !emitted < count then
    Printf.eprintf "warning: only %d of %d requested certificates emitted\n" !emitted
      count;
  if !degraded then begin
    Printf.eprintf "warning: degraded coverage: not every log delivered fully\n";
    4
  end
  else 0

let run_mutant field payload st_name =
  let st =
    match Asn1.Str_type.of_name st_name with
    | Some st -> st
    | None -> Asn1.Str_type.Utf8_string
  in
  let mutation =
    match field with
    | "cn" -> Tlsparsers.Testgen.Subject_attr (X509.Attr.Common_name, st, payload)
    | "o" -> Tlsparsers.Testgen.Subject_attr (X509.Attr.Organization_name, st, payload)
    | "san" -> Tlsparsers.Testgen.San_dns payload
    | "email" -> Tlsparsers.Testgen.San_rfc822 payload
    | "uri" -> Tlsparsers.Testgen.San_uri payload
    | "crldp" -> Tlsparsers.Testgen.Crldp_uri payload
    | other ->
        Printf.eprintf "error: unknown field %S (cn|o|san|email|uri|crldp)\n" other;
        exit 2
  in
  emit_pem (Tlsparsers.Testgen.make mutation)

let run mode count seed flawed_only field payload st fault metrics progress
    no_progress =
  if progress then Obs.Progress.set_override (Some true)
  else if no_progress then Obs.Progress.set_override (Some false);
  Fault_cli.set_metrics metrics;
  let code =
    match mode with
    | "corpus" ->
        Fault_cli.guard (fun () -> run_corpus count seed flawed_only fault)
    | "mutant" ->
        run_mutant field payload st;
        0
    | other ->
        Printf.eprintf "error: unknown mode %S (corpus|mutant)\n" other;
        2
  in
  (* 4 = completed with degraded fetch coverage; the funnel flushes
     metrics/trace on every path and applies the precedence law. *)
  Fault_cli.exit_via code

let mode = Arg.(value & pos 0 string "corpus" & info [] ~docv:"MODE" ~doc:"corpus or mutant")
let count = Arg.(value & opt int 5 & info [ "n" ] ~doc:"Number of corpus certificates")
let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Generator seed")
let flawed_only = Arg.(value & flag & info [ "flawed" ] ~doc:"Emit only noncompliant certificates")
let field = Arg.(value & opt string "san" & info [ "field" ] ~doc:"Mutated field (cn|o|san|email|uri|crldp)")
let payload = Arg.(value & opt string "test\x01.com" & info [ "payload" ] ~doc:"Raw payload bytes")
let st = Arg.(value & opt string "UTF8String" & info [ "string-type" ] ~doc:"Declared ASN.1 string type for DN mutants")
let metrics =
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE"
       ~doc:"Write collected telemetry at exit: Prometheus text, or JSON when FILE ends in .json")
let progress =
  Arg.(value & flag & info [ "progress" ] ~doc:"Force progress reporting on (default: only on a TTY, and not under OBS_QUIET)")
let no_progress =
  Arg.(value & flag & info [ "no-progress" ] ~doc:"Force progress reporting off")

let cmd =
  let doc = "generate test Unicerts (calibrated corpus samples or field mutants)" in
  Cmd.v (Cmd.info "unicert-gen" ~doc)
    Term.(const run $ mode $ count $ seed $ flawed_only $ field $ payload $ st
          $ Fault_cli.term $ metrics $ progress $ no_progress)

let () = exit (Cmd.eval cmd)
