(* unicert-store: manage the crash-safe on-disk certificate store —
   build it from a corpus pass (optionally under chaos injection),
   check and repair it, inspect identity and inventory, and query its
   persistent indexes.

   Exit codes follow the repo contract: 2 = unusable input (absent
   store, bad identity, bad flags), 3 = aborted / unusable store,
   4 = completed but degraded (issues found, yet intact data remains). *)

open Cmdliner

let dir_arg =
  Arg.(required & opt (some string) None
       & info [ "dir" ] ~docv:"DIR" ~doc:"Store directory")

(* --- chaos flags (build) --- *)

let parse_crash_at spec =
  let point, occurrence =
    match String.index_opt spec ':' with
    | None -> (spec, 1)
    | Some i -> (
        let point = String.sub spec 0 i in
        match
          int_of_string_opt (String.sub spec (i + 1) (String.length spec - i - 1))
        with
        | Some occ when occ >= 1 -> (point, occ)
        | _ ->
            Printf.eprintf
              "error: --crash-at: bad occurrence in %S (want POINT[:N], N >= 1)\n"
              spec;
            Fault_cli.exit_via 2)
  in
  if not (List.mem point Store.Chaos.crash_points) then begin
    Printf.eprintf
      "error: --crash-at: unknown crash point %S (run `unicert-store \
       crash-points`)\n"
      point;
    Fault_cli.exit_via 2
  end;
  (point, occurrence)

let arm_chaos ~chaos_rate ~chaos_seed ~chaos_kinds ~crash_at =
  if chaos_rate < 0.0 || chaos_rate > 1.0 then begin
    Printf.eprintf "error: --chaos-rate must be in [0,1]\n";
    Fault_cli.exit_via 2
  end;
  let kinds =
    match chaos_kinds with
    | None -> Store.Chaos.all_kinds
    | Some names ->
        List.map
          (fun name ->
            match Store.Chaos.kind_of_name name with
            | Some k -> k
            | None ->
                Printf.eprintf
                  "error: --chaos-kinds: unknown kind %S (known: %s)\n" name
                  (String.concat ", "
                     (List.map Store.Chaos.kind_name Store.Chaos.all_kinds));
                Fault_cli.exit_via 2)
          (String.split_on_char ',' names)
  in
  if chaos_rate > 0.0 then
    Store.Chaos.arm { Store.Chaos.seed = chaos_seed; rate = chaos_rate; kinds };
  List.iter
    (fun spec ->
      let point, occurrence = parse_crash_at spec in
      Store.Chaos.arm_crash ~point ~occurrence)
    crash_at

(* --- build --- *)

let build dir scale seed (fault : Fault_cli.t) chaos_rate chaos_seed
    chaos_kinds crash_at metrics progress no_progress =
  if progress then Obs.Progress.set_override (Some true)
  else if no_progress then Obs.Progress.set_override (Some false);
  Fault_cli.set_metrics metrics;
  arm_chaos ~chaos_rate ~chaos_seed ~chaos_kinds ~crash_at;
  let source =
    match fault.Fault_cli.fetch with
    | Some cfg -> Unicert.Pipeline.Fetch cfg
    | None -> Unicert.Pipeline.Generate
  in
  Fault_cli.warn_stale_cursors fault ~scale;
  let t =
    Fault_cli.guard (fun () ->
        try
          Unicert.Pipeline.run ~scale ~seed ~policy:fault.Fault_cli.policy
            ?mutator:(Fault_cli.mutator ~default_seed:seed fault)
            ~drop:fault.Fault_cli.drop ~resume:fault.Fault_cli.resume
            ~jobs:fault.Fault_cli.jobs ~source ~store:dir ()
        with Store.Chaos.Crashed point ->
          (* The store is in exactly the state a SIGKILL would have left;
             rerunning the same command recovers and completes. *)
          Printf.eprintf
            "simulated crash at %s; rerun the same command to recover\n" point;
          Fault_cli.exit_via 3)
  in
  Store.Chaos.disarm ();
  Printf.printf "store %s: %d certificate(s), %d noncompliant, %d fault record(s)\n"
    dir t.Unicert.Pipeline.total t.Unicert.Pipeline.nc_total
    t.Unicert.Pipeline.faults.Unicert.Pipeline.fault_errors;
  let code =
    match t.Unicert.Pipeline.faults.Unicert.Pipeline.aborted with
    | Some reason ->
        Printf.eprintf "error: run aborted: %s\n" reason;
        3
    | None ->
        Fault_cli.cleanup_stale_cursors fault ~scale;
        if Unicert.Pipeline.coverage_degraded t then begin
          Printf.eprintf
            "warning: degraded coverage: not every log delivered fully\n";
          4
        end
        else 0
  in
  Fault_cli.exit_via code

(* --- fsck --- *)

let fsck dir repair =
  let r = Store.Db.fsck ~repair ~dir () in
  List.iter
    (fun (i : Store.Db.issue) ->
      Printf.printf "%s: %s: %s%s\n" i.Store.Db.file i.Store.Db.problem
        i.Store.Db.detail
        (if repair then " -> " ^ i.Store.Db.repair
         else Printf.sprintf " (repair would %s)" i.Store.Db.repair))
    r.Store.Db.issues;
  Printf.printf "fsck %s: state=%s, %d/%d span(s) intact, %d issue(s)%s\n" dir
    (match r.Store.Db.store_state with
    | `Complete -> "complete"
    | `Building -> "building"
    | `Absent -> "absent")
    r.Store.Db.spans_ok r.Store.Db.spans_expected
    (List.length r.Store.Db.issues)
    (if r.Store.Db.repaired then ", repaired" else "");
  (* 2: nothing to check; 0: clean; 4: damaged but usable data remains
     (degraded, not fatal); 3: nothing salvageable. *)
  match r.Store.Db.store_state with
  | `Absent -> Fault_cli.exit_via 2
  | `Complete | `Building ->
      if r.Store.Db.issues = [] then ()
      else if r.Store.Db.usable then Fault_cli.exit_via 4
      else Fault_cli.exit_via 3

(* --- info --- *)

let show_info dir =
  Fault_cli.guard @@ fun () ->
  let db = Store.Db.open_ro ~dir in
  let id = Store.Db.id db in
  let man = Store.Db.manifest db in
  Printf.printf "store %s\n" dir;
  Printf.printf "  identity: scale=%d seed=%d\n" id.Store.Manifest.scale
    id.Store.Manifest.seed;
  Printf.printf "  fingerprint: %s\n" id.Store.Manifest.fingerprint;
  Printf.printf "  state: %s\n"
    (match man.Store.Manifest.state with
    | `Complete -> "complete"
    | `Building -> "building");
  let lints = String.split_on_char ';' man.Store.Manifest.lints in
  Printf.printf "  lints: %d\n"
    (List.length (List.filter (fun l -> l <> "") lints));
  let records =
    List.fold_left
      (fun a (s : Store.Manifest.seg) -> a + s.Store.Manifest.records)
      0 man.Store.Manifest.segments
  in
  Printf.printf "  records: %d in %d span(s)\n" records
    (List.length man.Store.Manifest.segments);
  List.iter
    (fun (s : Store.Manifest.seg) ->
      Printf.printf "    [%d,%d) %s (%d records)\n" s.Store.Manifest.lo
        s.Store.Manifest.hi s.Store.Manifest.file s.Store.Manifest.records)
    man.Store.Manifest.segments;
  Printf.printf "  indexes:%s\n"
    (match man.Store.Manifest.indexes with [] -> " none" | _ -> "");
  List.iter
    (fun (name, file, _sha) -> Printf.printf "    %s -> %s\n" name file)
    man.Store.Manifest.indexes;
  List.iter
    (fun (k, v) ->
      Printf.printf "  meta %s: %s\n" k
        (if String.contains v '\n' || String.length v > 64 then
           Printf.sprintf "<%d bytes>" (String.length v)
         else v))
    man.Store.Manifest.meta

(* --- query --- *)

let query dir name key =
  Fault_cli.guard @@ fun () ->
  let db = Store.Db.open_ro ~dir in
  match Store.Db.load_index db name with
  | Error e ->
      Printf.eprintf "error: index %S: %s\n" name e;
      Fault_cli.exit_via 2
  | Ok entries -> (
      match List.assoc_opt key entries with
      | None | Some [] -> Printf.printf "%s %S: no matching certificates\n" name key
      | Some ids ->
          Printf.printf "%s %S: %d certificate(s): %s\n" name key
            (List.length ids)
            (String.concat " " (List.map string_of_int ids)))

(* --- command line --- *)

let scale =
  Arg.(value & opt int Ctlog.Dataset.default_scale
       & info [ "scale" ] ~doc:"Corpus size")

let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Corpus seed")

let chaos_rate =
  Arg.(value & opt float 0.0 & info [ "chaos-rate" ] ~docv:"RATE"
       ~doc:"Fault this fraction of store writes (seeded, deterministic): \
             torn writes, short writes, bit flips")

let chaos_seed =
  Arg.(value & opt int 1 & info [ "chaos-seed" ] ~docv:"SEED"
       ~doc:"Chaos plan seed")

let chaos_kinds =
  Arg.(value & opt (some string) None & info [ "chaos-kinds" ] ~docv:"K1,K2"
       ~doc:"Comma-separated chaos kinds (default: all)")

let crash_at =
  Arg.(value & opt_all string [] & info [ "crash-at" ] ~docv:"POINT[:N]"
       ~doc:"Simulate process death at the N-th hit (default 1st) of a \
             declared crash point (repeatable; run $(b,crash-points) for \
             the list)")

let repair =
  Arg.(value & flag & info [ "repair" ]
       ~doc:"Repair what fsck finds: truncate torn tails, quarantine \
             corrupt segments, delete strays, rewrite the manifest to \
             reference only intact files")

let progress =
  Arg.(value & flag & info [ "progress" ] ~doc:"Force progress reporting on")

let no_progress =
  Arg.(value & flag & info [ "no-progress" ] ~doc:"Force progress reporting off")

let metrics =
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE"
       ~doc:"Write collected telemetry at exit: Prometheus text, or JSON \
             when FILE ends in .json")

let build_cmd =
  let doc = "populate (or resume populating) a store from a corpus pass" in
  Cmd.v (Cmd.info "build" ~doc)
    Term.(const build $ dir_arg $ scale $ seed $ Fault_cli.term $ chaos_rate
          $ chaos_seed $ chaos_kinds $ crash_at $ metrics $ progress
          $ no_progress)

let fsck_cmd =
  let doc = "verify every segment, index and the manifest; optionally repair" in
  Cmd.v (Cmd.info "fsck" ~doc) Term.(const fsck $ dir_arg $ repair)

let info_cmd =
  let doc = "print store identity, state and inventory" in
  Cmd.v (Cmd.info "info" ~doc) Term.(const show_info $ dir_arg)

let query_cmd =
  let doc = "look up certificates by issuer, lint, flaw class, domain label \
             or U-label" in
  let index_name =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"INDEX"
         ~doc:"Index name: issuer, lint, flaw, domain, or ulabel")
  in
  let index_key =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"KEY"
         ~doc:"Lookup key (e.g. an issuer org or a domain label)")
  in
  Cmd.v (Cmd.info "query" ~doc)
    Term.(const query $ dir_arg $ index_name $ index_key)

let points_cmd =
  let doc = "list the declared crash points, in build order" in
  Cmd.v (Cmd.info "crash-points" ~doc)
    Term.(const (fun () -> List.iter print_endline Store.Chaos.crash_points)
          $ const ())

let cmd =
  let doc = "manage the crash-safe on-disk certificate store" in
  Cmd.group (Cmd.info "unicert-store" ~doc)
    [ build_cmd; fsck_cmd; info_cmd; query_cmd; points_cmd ]

let () = exit (Cmd.eval cmd)
