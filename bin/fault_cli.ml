(* Shared fault-layer flags for the three binaries: corpus corruption,
   error-budget policy, quarantine, checkpointing and fault injection.
   Evaluating the term arms the injection harness as a side effect, so
   a binary only has to thread [policy]/[mutator] into the pipeline. *)

open Cmdliner

type t = {
  policy : Faults.Policy.t;
  corrupt_rate : float;
  corrupt_seed : int option;
  corrupt_kinds : Faults.Mutator.kind list option;
  drop : bool;
  resume : bool;
  jobs : int;
  fetch : Ctlog.Fetch.cfg option;
      (* Some cfg when --source fetch: the corpus comes from simulated
         CT logs over the fault-injected transport *)
  trace : string option;
      (* --trace FILE: record a Chrome-trace timeline of the run *)
  profile : bool;  (* --profile: GC attribution + slow-cert log *)
  store : string option;
      (* --store DIR: land the run in the crash-safe on-disk store *)
}

(* --- the exit funnel ---------------------------------------------------

   Every nonzero path of every binary must still flush metrics and
   traces, and a run that earns several codes must exit with the most
   diagnostic one (Faults.Exitcode: 2 > 3 > 4 > 1 > 0).  Binaries
   register their --metrics target here and route every exit through
   [exit_via]; [guard] catches the two "your inputs are unusable"
   exceptions of the store/resume stack and funnels them as code 2. *)

let metrics_target : string option ref = ref None
let profile_target = ref false

let set_metrics file = metrics_target := file

let flush_outputs () =
  let code = ref 0 in
  (match !metrics_target with
  | None -> ()
  | Some file -> (
      metrics_target := None;
      try Obs.Export.write_file Obs.Registry.default file
      with Sys_error msg ->
        Printf.eprintf "error: cannot write metrics: %s\n" msg;
        code := 1));
  (try Obs.Trace.flush ()
   with Sys_error msg ->
     Printf.eprintf "error: cannot write trace: %s\n" msg;
     code := 1);
  if !profile_target then begin
    profile_target := false;
    Obs.Profile.print_top stderr
  end;
  !code

let exit_via code = exit (Faults.Exitcode.worst code (flush_outputs ()))

let guard f =
  try f () with
  | Faults.Checkpoint.Invalid msg ->
      Printf.eprintf "error: %s\n" msg;
      exit_via 2
  | Store.Db.Store_error msg ->
      Printf.eprintf "error: %s\n" msg;
      exit_via 2

(* Stale cursor hygiene: a run that shrank --jobs (or --logs) leaves
   high-numbered [FILE.shard<k>]/[FILE.fetch<k>] cursors behind.  Warn
   up front; delete only after a successful completion so a killed run
   keeps its evidence.  Each cursor family is judged only by the run
   mode that owns it: a generate-sourced run says nothing about
   [.fetch<k>] files (they are live resume state of an interrupted
   fetch, not stale droppings), so its [active_fetch] is [None]; a
   fetch-sourced run owns both families. *)
let cursor_active t ~scale =
  let nshards = List.length (Par.shards ~jobs:t.jobs scale) in
  let active_fetch =
    Option.map
      (fun cfg -> List.length (Par.shards ~jobs:cfg.Ctlog.Fetch.logs scale))
      t.fetch
  in
  (Some nshards, active_fetch)

let warn_stale_cursors t ~scale =
  match t.policy.Faults.Policy.checkpoint_file with
  | None -> ()
  | Some file ->
      let active_shards, active_fetch = cursor_active t ~scale in
      List.iter
        (fun f ->
          Printf.eprintf
            "warning: stale cursor %s (left by a run with more shards or \
             logs); it will be removed when this run completes\n"
            f)
        (Faults.Checkpoint.stale_cursors file ~active_shards ~active_fetch)

let cleanup_stale_cursors t ~scale =
  match t.policy.Faults.Policy.checkpoint_file with
  | None -> ()
  | Some file ->
      let active_shards, active_fetch = cursor_active t ~scale in
      ignore (Faults.Checkpoint.remove_stale file ~active_shards ~active_fetch)

let mutator ~default_seed t =
  if t.corrupt_rate <= 0.0 then None
  else
    Some
      (Faults.Mutator.plan
         ?kinds:t.corrupt_kinds
         ~seed:(Option.value ~default:default_seed t.corrupt_seed)
         ~rate:t.corrupt_rate ())

let arm_specs ~flag ~prefix ~mode specs =
  List.iter
    (fun spec ->
      match Faults.Injector.parse_spec spec with
      | Ok (target, every) -> Faults.Injector.arm ~mode ~every (prefix ^ target)
      | Error msg ->
          Printf.eprintf "error: %s: %s\n" flag msg;
          exit 2)
    specs

(* "LOG:REQUEST:LEAF" -> (log, at_request, flip), e.g. log-03:5:10. *)
let parse_equivocate spec =
  match String.split_on_char ':' spec with
  | [ log; req; leaf ] -> (
      match (int_of_string_opt req, int_of_string_opt leaf) with
      | Some r, Some l when r >= 0 && l >= 0 -> (log, r, l)
      | _ ->
          Printf.eprintf "error: --equivocate: bad spec %S (want LOG:REQUEST:LEAF)\n" spec;
          exit 2)
  | _ ->
      Printf.eprintf "error: --equivocate: bad spec %S (want LOG:REQUEST:LEAF)\n" spec;
      exit 2

let make corrupt_rate corrupt_seed corrupt_kinds drop max_errors fail_fast
    quarantine timeout checkpoint checkpoint_every resume fault_lints
    fault_models fault_hang breaker_threshold jobs source logs net_fault_rate
    net_seed net_kinds net_flap_rate net_down page_cap equivocate trace
    trace_sample trace_ring profile store =
  if corrupt_rate < 0.0 || corrupt_rate > 1.0 then begin
    Printf.eprintf "error: --corrupt-rate must be in [0,1]\n";
    exit 2
  end;
  if jobs <= 0 then begin
    Printf.eprintf
      "error: --jobs must be a positive worker count (got %d)\n" jobs;
    exit 2
  end;
  let kinds =
    match corrupt_kinds with
    | None -> None
    | Some names ->
        Some
          (List.map
             (fun name ->
               match Faults.Mutator.kind_of_name name with
               | Some k -> k
               | None ->
                   Printf.eprintf
                     "error: --corrupt-kinds: unknown kind %S (known: %s)\n" name
                     (String.concat ", "
                        (List.map Faults.Mutator.kind_name Faults.Mutator.all_kinds));
                   exit 2)
             (String.split_on_char ',' names))
  in
  let mode = if fault_hang then Faults.Injector.Hang else Faults.Injector.Crash in
  arm_specs ~flag:"--fault-lint" ~prefix:"" ~mode fault_lints;
  arm_specs ~flag:"--fault-model" ~prefix:"model:" ~mode fault_models;
  (* Arm tracing/profiling here so every code path of every binary is
     covered without further threading; when the flags are absent the
     instrumented paths stay on their disabled fast path. *)
  if trace_sample < 1 then begin
    Printf.eprintf "error: --trace-sample must be >= 1\n";
    exit 2
  end;
  if trace_ring < 16 then begin
    Printf.eprintf "error: --trace-ring must be >= 16\n";
    exit 2
  end;
  (match trace with
  | None -> ()
  | Some file -> Obs.Trace.enable ~ring:trace_ring ~sample:trace_sample ~file ());
  if profile then begin
    Obs.Profile.enable ();
    profile_target := true
  end;
  let fetch =
    match source with
    | "generate" -> None
    | "fetch" ->
        if net_fault_rate < 0.0 || net_fault_rate > 1.0 then begin
          Printf.eprintf "error: --net-fault-rate must be in [0,1]\n";
          exit 2
        end;
        if logs < 1 then begin
          Printf.eprintf "error: --logs must be >= 1\n";
          exit 2
        end;
        let base = Ctlog.Fetch.default_cfg in
        let fault_kinds =
          match net_kinds with
          | None -> base.Ctlog.Fetch.fault_kinds
          | Some names ->
              List.map
                (fun name ->
                  match Net.Fault.kind_of_name name with
                  | Some k -> k
                  | None ->
                      Printf.eprintf
                        "error: --net-kinds: unknown kind %S (known: %s)\n" name
                        (String.concat ", "
                           (List.map Net.Fault.kind_name Net.Fault.all_kinds));
                      exit 2)
                (String.split_on_char ',' names)
        in
        Some
          { base with
            Ctlog.Fetch.logs;
            net_seed;
            fault_rate = net_fault_rate;
            fault_kinds;
            flap_rate = net_flap_rate;
            down =
              (match net_down with
              | None -> []
              | Some names -> String.split_on_char ',' names);
            page_cap;
            equivocate = List.map parse_equivocate equivocate;
          }
    | other ->
        Printf.eprintf "error: --source: unknown source %S (generate|fetch)\n"
          other;
        exit 2
  in
  {
    policy =
      {
        Faults.Policy.max_errors;
        fail_fast;
        quarantine_dir = quarantine;
        timeout_seconds = timeout;
        breaker_threshold;
        checkpoint_file = checkpoint;
        checkpoint_every;
      };
    corrupt_rate;
    corrupt_seed;
    corrupt_kinds = kinds;
    drop;
    resume;
    jobs;
    fetch;
    trace;
    profile;
    store;
  }

let term =
  let corrupt_rate =
    Arg.(value & opt float 0.0 & info [ "corrupt-rate" ] ~docv:"RATE"
         ~doc:"Corrupt this fraction of the generated corpus (seeded, deterministic) before delivery")
  in
  let corrupt_seed =
    Arg.(value & opt (some int) None & info [ "corrupt-seed" ] ~docv:"SEED"
         ~doc:"Mutator seed (default: the corpus seed)")
  in
  let corrupt_kinds =
    let known =
      String.concat ", " (List.map Faults.Mutator.kind_name Faults.Mutator.all_kinds)
    in
    Arg.(value & opt (some string) None & info [ "corrupt-kinds" ] ~docv:"K1,K2"
         ~doc:(Printf.sprintf
                 "Comma-separated mutation kinds (default: all). Known kinds: %s."
                 known))
  in
  let drop =
    Arg.(value & flag & info [ "drop-faulty" ]
         ~doc:"Deliver nothing for corrupted indices instead of the corrupted bytes (A/B baseline)")
  in
  let max_errors =
    Arg.(value & opt (some int) None & info [ "max-errors" ] ~docv:"N"
         ~doc:"Abort the run after N per-certificate errors")
  in
  let fail_fast =
    Arg.(value & flag & info [ "fail-fast" ]
         ~doc:"Abort on the first per-certificate error")
  in
  let quarantine =
    Arg.(value & opt (some string) None & info [ "quarantine" ] ~docv:"DIR"
         ~doc:"Write offending certificates and their errors to a JSONL sidecar in DIR")
  in
  let timeout =
    Arg.(value & opt (some float) None & info [ "timeout" ] ~docv:"SECONDS"
         ~doc:"Per-certificate watchdog; a slow certificate counts as a timeout fault")
  in
  let checkpoint =
    Arg.(value & opt (some string) None & info [ "checkpoint" ] ~docv:"FILE"
         ~doc:"Save pipeline state to FILE periodically (atomic rename)")
  in
  let checkpoint_every =
    Arg.(value & opt int Faults.Policy.default.Faults.Policy.checkpoint_every
         & info [ "checkpoint-every" ] ~docv:"N"
         ~doc:"Certificates between checkpoint saves")
  in
  let resume =
    Arg.(value & flag & info [ "resume" ]
         ~doc:"Continue from the --checkpoint file when it matches this run's scale and seed")
  in
  let fault_lints =
    Arg.(value & opt_all string [] & info [ "fault-lint" ] ~docv:"NAME:EVERY"
         ~doc:"Make lint NAME raise on every EVERY-th invocation (repeatable)")
  in
  let fault_models =
    Arg.(value & opt_all string [] & info [ "fault-model" ] ~docv:"NAME:EVERY"
         ~doc:"Make parser model NAME raise on every EVERY-th invocation (repeatable)")
  in
  let fault_hang =
    Arg.(value & flag & info [ "fault-hang" ]
         ~doc:"Injected faults hang (bounded busy loop) instead of raising")
  in
  let breaker_threshold =
    Arg.(value & opt int Faults.Breaker.default_threshold
         & info [ "breaker-threshold" ] ~docv:"N"
         ~doc:"Consecutive crashes before a lint/model circuit breaker opens")
  in
  let jobs =
    Arg.(value & opt int (Par.default_jobs ()) & info [ "jobs"; "j" ] ~docv:"N"
         ~doc:(Printf.sprintf
                 "Worker domains for corpus passes; must be >= 1 (default: \
                  the runtime's recommended domain count, %d on this \
                  machine).  A completed pass produces byte-identical \
                  output for every N"
                 (Par.default_jobs ())))
  in
  let source =
    Arg.(value & opt string "generate" & info [ "source" ] ~docv:"SOURCE"
         ~doc:"Corpus source: $(b,generate) synthesizes certificates \
               in-process (the default); $(b,fetch) retrieves them page by \
               page from simulated CT logs over a fault-injected transport \
               with retries, backoff, rate limiting and STH consistency \
               verification")
  in
  let logs =
    Arg.(value & opt int Ctlog.Fetch.default_cfg.Ctlog.Fetch.logs
         & info [ "logs" ] ~docv:"N"
         ~doc:"Number of simulated CT logs the corpus is partitioned across \
               (fetch source)")
  in
  let net_fault_rate =
    Arg.(value & opt float Ctlog.Fetch.default_cfg.Ctlog.Fetch.fault_rate
         & info [ "net-fault-rate" ] ~docv:"RATE"
         ~doc:"Per-request transport fault probability in [0,1] (fetch \
               source; seeded, deterministic)")
  in
  let net_seed =
    Arg.(value & opt (some int) None & info [ "net-seed" ] ~docv:"SEED"
         ~doc:"Transport fault-plan seed (default: derived from the corpus \
               seed)")
  in
  let net_kinds =
    Arg.(value & opt (some string) None & info [ "net-kinds" ] ~docv:"K1,K2"
         ~doc:"Comma-separated transport fault kinds (default: all)")
  in
  let net_flap_rate =
    Arg.(value & opt float Ctlog.Fetch.default_cfg.Ctlog.Fetch.flap_rate
         & info [ "net-flap-rate" ] ~docv:"RATE"
         ~doc:"Probability a log enters a flapping window where every \
               request resets (fetch source)")
  in
  let net_down =
    Arg.(value & opt (some string) None & info [ "net-down" ] ~docv:"L1,L2"
         ~doc:"Comma-separated names of permanently dead logs, e.g. \
               $(b,log-03): their breakers trip and coverage degrades \
               instead of the run aborting")
  in
  let page_cap =
    Arg.(value & opt int Ctlog.Fetch.default_cfg.Ctlog.Fetch.page_cap
         & info [ "page-cap" ] ~docv:"N"
         ~doc:"Maximum get-entries rows a simulated log returns per page")
  in
  let equivocate =
    Arg.(value & opt_all string [] & info [ "equivocate" ] ~docv:"LOG:REQ:LEAF"
         ~doc:"Make LOG serve a forked view (leaf LEAF flipped) from its \
               REQ-th request on — the split-view detection drill \
               (repeatable)")
  in
  let trace =
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
         ~doc:"Record a structured trace of the run to FILE: Chrome \
               trace_event JSON (open in Perfetto or chrome://tracing), or \
               one event per line when FILE ends in $(b,.jsonl)")
  in
  let trace_sample =
    Arg.(value & opt int Obs.Trace.default_sample
         & info [ "trace-sample" ] ~docv:"N"
         ~doc:"Trace every N-th per-lint / per-parser-model invocation \
               (1 traces all; pipeline, shard, net and fetch spans are \
               never sampled)")
  in
  let trace_ring =
    Arg.(value & opt int Obs.Trace.default_ring
         & info [ "trace-ring" ] ~docv:"N"
         ~doc:"Trace ring-buffer capacity in events; when full the oldest \
               events are evicted (the exporter keeps begin/end pairing \
               balanced)")
  in
  let profile =
    Arg.(value & flag & info [ "profile" ]
         ~doc:"Attribute GC work (minor/major words, collections) to the \
               span it happened in and log the slowest certificates with \
               their dominant stage")
  in
  let store =
    Arg.(value & opt (some string) None & info [ "store" ] ~docv:"DIR"
         ~doc:"Land the run in the crash-safe on-disk certificate store at \
               DIR: a cold run populates it (resumable after a kill), a \
               warm re-run replays stored analysis rows without \
               regenerating or re-linting, and a re-run after the lint set \
               changed recomputes only the missing columns")
  in
  Term.(const make $ corrupt_rate $ corrupt_seed $ corrupt_kinds $ drop
        $ max_errors $ fail_fast $ quarantine $ timeout $ checkpoint
        $ checkpoint_every $ resume $ fault_lints $ fault_models $ fault_hang
        $ breaker_threshold $ jobs $ source $ logs $ net_fault_rate $ net_seed
        $ net_kinds $ net_flap_rate $ net_down $ page_cap $ equivocate $ trace
        $ trace_sample $ trace_ring $ profile $ store)
