(* Shared fault-layer flags for the three binaries: corpus corruption,
   error-budget policy, quarantine, checkpointing and fault injection.
   Evaluating the term arms the injection harness as a side effect, so
   a binary only has to thread [policy]/[mutator] into the pipeline. *)

open Cmdliner

type t = {
  policy : Faults.Policy.t;
  corrupt_rate : float;
  corrupt_seed : int option;
  corrupt_kinds : Faults.Mutator.kind list option;
  drop : bool;
  resume : bool;
  jobs : int;
}

let mutator ~default_seed t =
  if t.corrupt_rate <= 0.0 then None
  else
    Some
      (Faults.Mutator.plan
         ?kinds:t.corrupt_kinds
         ~seed:(Option.value ~default:default_seed t.corrupt_seed)
         ~rate:t.corrupt_rate ())

let arm_specs ~flag ~prefix ~mode specs =
  List.iter
    (fun spec ->
      match Faults.Injector.parse_spec spec with
      | Ok (target, every) -> Faults.Injector.arm ~mode ~every (prefix ^ target)
      | Error msg ->
          Printf.eprintf "error: %s: %s\n" flag msg;
          exit 2)
    specs

let make corrupt_rate corrupt_seed corrupt_kinds drop max_errors fail_fast
    quarantine timeout checkpoint checkpoint_every resume fault_lints
    fault_models fault_hang breaker_threshold jobs =
  if corrupt_rate < 0.0 || corrupt_rate > 1.0 then begin
    Printf.eprintf "error: --corrupt-rate must be in [0,1]\n";
    exit 2
  end;
  let kinds =
    match corrupt_kinds with
    | None -> None
    | Some names ->
        Some
          (List.map
             (fun name ->
               match Faults.Mutator.kind_of_name name with
               | Some k -> k
               | None ->
                   Printf.eprintf
                     "error: --corrupt-kinds: unknown kind %S (known: %s)\n" name
                     (String.concat ", "
                        (List.map Faults.Mutator.kind_name Faults.Mutator.all_kinds));
                   exit 2)
             (String.split_on_char ',' names))
  in
  let mode = if fault_hang then Faults.Injector.Hang else Faults.Injector.Crash in
  arm_specs ~flag:"--fault-lint" ~prefix:"" ~mode fault_lints;
  arm_specs ~flag:"--fault-model" ~prefix:"model:" ~mode fault_models;
  {
    policy =
      {
        Faults.Policy.max_errors;
        fail_fast;
        quarantine_dir = quarantine;
        timeout_seconds = timeout;
        breaker_threshold;
        checkpoint_file = checkpoint;
        checkpoint_every;
      };
    corrupt_rate;
    corrupt_seed;
    corrupt_kinds = kinds;
    drop;
    resume;
    jobs = max 1 jobs;
  }

let term =
  let corrupt_rate =
    Arg.(value & opt float 0.0 & info [ "corrupt-rate" ] ~docv:"RATE"
         ~doc:"Corrupt this fraction of the generated corpus (seeded, deterministic) before delivery")
  in
  let corrupt_seed =
    Arg.(value & opt (some int) None & info [ "corrupt-seed" ] ~docv:"SEED"
         ~doc:"Mutator seed (default: the corpus seed)")
  in
  let corrupt_kinds =
    Arg.(value & opt (some string) None & info [ "corrupt-kinds" ] ~docv:"K1,K2"
         ~doc:"Comma-separated mutation kinds (default: all)")
  in
  let drop =
    Arg.(value & flag & info [ "drop-faulty" ]
         ~doc:"Deliver nothing for corrupted indices instead of the corrupted bytes (A/B baseline)")
  in
  let max_errors =
    Arg.(value & opt (some int) None & info [ "max-errors" ] ~docv:"N"
         ~doc:"Abort the run after N per-certificate errors")
  in
  let fail_fast =
    Arg.(value & flag & info [ "fail-fast" ]
         ~doc:"Abort on the first per-certificate error")
  in
  let quarantine =
    Arg.(value & opt (some string) None & info [ "quarantine" ] ~docv:"DIR"
         ~doc:"Write offending certificates and their errors to a JSONL sidecar in DIR")
  in
  let timeout =
    Arg.(value & opt (some float) None & info [ "timeout" ] ~docv:"SECONDS"
         ~doc:"Per-certificate watchdog; a slow certificate counts as a timeout fault")
  in
  let checkpoint =
    Arg.(value & opt (some string) None & info [ "checkpoint" ] ~docv:"FILE"
         ~doc:"Save pipeline state to FILE periodically (atomic rename)")
  in
  let checkpoint_every =
    Arg.(value & opt int Faults.Policy.default.Faults.Policy.checkpoint_every
         & info [ "checkpoint-every" ] ~docv:"N"
         ~doc:"Certificates between checkpoint saves")
  in
  let resume =
    Arg.(value & flag & info [ "resume" ]
         ~doc:"Continue from the --checkpoint file when it matches this run's scale and seed")
  in
  let fault_lints =
    Arg.(value & opt_all string [] & info [ "fault-lint" ] ~docv:"NAME:EVERY"
         ~doc:"Make lint NAME raise on every EVERY-th invocation (repeatable)")
  in
  let fault_models =
    Arg.(value & opt_all string [] & info [ "fault-model" ] ~docv:"NAME:EVERY"
         ~doc:"Make parser model NAME raise on every EVERY-th invocation (repeatable)")
  in
  let fault_hang =
    Arg.(value & flag & info [ "fault-hang" ]
         ~doc:"Injected faults hang (bounded busy loop) instead of raising")
  in
  let breaker_threshold =
    Arg.(value & opt int Faults.Breaker.default_threshold
         & info [ "breaker-threshold" ] ~docv:"N"
         ~doc:"Consecutive crashes before a lint/model circuit breaker opens")
  in
  let jobs =
    Arg.(value & opt int (Par.default_jobs ()) & info [ "jobs"; "j" ] ~docv:"N"
         ~doc:"Worker domains for corpus passes (default: the runtime's \
               recommended domain count).  A completed pass produces \
               byte-identical output for every N")
  in
  Term.(const make $ corrupt_rate $ corrupt_seed $ corrupt_kinds $ drop
        $ max_errors $ fail_fast $ quarantine $ timeout $ checkpoint
        $ checkpoint_every $ resume $ fault_lints $ fault_models $ fault_hang
        $ breaker_threshold $ jobs)
