(* @trace-smoke: validate a recorded Chrome trace_event file.

   Checks the schema the Perfetto / chrome://tracing importer relies
   on: a top-level traceEvents array, the required keys per event with
   the right types, a known phase letter, matched and balanced B/E
   pairs per thread track, and per-track monotonic timestamps.  Also
   requires the categories a pipeline-over-fetch run must produce
   ("stage", "net", "fetch"), so a silently empty instrumentation layer
   fails the smoke test rather than shipping blank traces. *)

let fail fmt =
  Printf.ksprintf
    (fun m ->
      prerr_endline ("trace-check: FAIL: " ^ m);
      exit 1)
    fmt

let slurp path =
  let ic = try open_in_bin path with Sys_error m -> fail "%s" m in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let str_member k obj =
  match Obs.Jsonv.member k obj with
  | Some (Obs.Jsonv.Str s) -> s
  | Some _ -> fail "event %s is not a string" k
  | None -> fail "event lacks required key %S" k

let num_member k obj =
  match Obs.Jsonv.member k obj with
  | Some (Obs.Jsonv.Num n) -> n
  | Some _ -> fail "event %s is not a number" k
  | None -> fail "event lacks required key %S" k

let () =
  let path =
    if Array.length Sys.argv <> 2 then fail "usage: trace_check FILE"
    else Sys.argv.(1)
  in
  let doc =
    match Obs.Jsonv.parse (slurp path) with
    | Ok v -> v
    | Error msg -> fail "not valid JSON: %s" msg
  in
  let events =
    match Obs.Jsonv.member "traceEvents" doc with
    | Some (Obs.Jsonv.List l) -> l
    | Some _ -> fail "traceEvents is not an array"
    | None -> fail "no traceEvents key"
  in
  if events = [] then fail "empty trace";
  let stacks : (float, (string * float) list ref) Hashtbl.t =
    Hashtbl.create 8
  in
  let last_ts : (float, float) Hashtbl.t = Hashtbl.create 8 in
  let cats = Hashtbl.create 8 in
  List.iteri
    (fun i ev ->
      let name = str_member "name" ev in
      let cat = str_member "cat" ev in
      let ph = str_member "ph" ev in
      let ts = num_member "ts" ev in
      ignore (num_member "pid" ev);
      let tid = num_member "tid" ev in
      Hashtbl.replace cats cat ();
      if ts < 0. then fail "event %d (%s): negative ts" i name;
      (match Hashtbl.find_opt last_ts tid with
      | Some prev when ts < prev ->
          fail "event %d (%s): ts %.3f < %.3f, not monotonic on tid %g" i name
            ts prev tid
      | _ -> Hashtbl.replace last_ts tid ts);
      let stack =
        match Hashtbl.find_opt stacks tid with
        | Some r -> r
        | None ->
            let r = ref [] in
            Hashtbl.add stacks tid r;
            r
      in
      match ph with
      | "B" -> stack := (name, ts) :: !stack
      | "E" -> (
          match !stack with
          | (_, t0) :: rest ->
              if ts < t0 then
                fail "event %d (%s): E at %.3f before its B at %.3f" i name ts
                  t0;
              stack := rest
          | [] -> fail "event %d (%s): E without a matching B on tid %g" i name tid)
      | "i" -> (
          match Obs.Jsonv.member "s" ev with
          | Some (Obs.Jsonv.Str _) -> ()
          | _ -> fail "event %d (%s): instant lacks a scope \"s\"" i name)
      | "b" | "e" ->
          if Obs.Jsonv.member "id" ev = None then
            fail "event %d (%s): async phase lacks an id" i name
      | other -> fail "event %d (%s): unknown phase %S" i name other)
    events;
  Hashtbl.iter
    (fun tid stack ->
      match !stack with
      | [] -> ()
      | (name, _) :: _ ->
          fail "tid %g: span %S still open at end of trace" tid name)
    stacks;
  List.iter
    (fun cat ->
      if not (Hashtbl.mem cats cat) then
        fail "no %S events: instrumentation layer went silent" cat)
    [ "stage"; "net"; "fetch" ];
  Printf.printf "trace-check: OK (%d events, %d tracks, %d categories)\n"
    (List.length events) (Hashtbl.length stacks) (Hashtbl.length cats)
