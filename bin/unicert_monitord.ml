(* unicert-monitord: the continuous CT-monitor daemon (DESIGN.md §13).

   Tails the simulated CT logs through long-lived fetch feeds
   (incremental STH refresh with consistency verification against the
   checkpointed head, per-log breakers, split-view quarantine), lints
   every entry as it arrives through the same engine as the batch
   pipeline, lands cert + analysis rows in the crash-safe store with
   periodic atomic manifest commits, and serves a crt.sh-style query
   API over a framed line protocol on stdin/stdout.

   Tick-driven for determinism: each [tick] command (or each of
   --ticks at startup) advances every log's publish schedule, polls
   every feed (in parallel under --jobs; results are independent of
   it), and stages the newly delivered entries.  Every --commit-every
   ticks the staged material is committed — store manifest first, then
   the query service's read snapshot — so queries always answer from
   exactly the durable prefix.  Killing the process at any point loses
   at most the uncommitted tail: fetch cursors carry the delivered
   history, so a restarted daemon replays the committed rows, reopens
   its feeds at the trusted STH, and re-stages the rest. *)

open Cmdliner

let stop_requested = ref false

(* One log's ingest state between commits.  [mark] is the next corpus
   index not yet durably landed; [next] the next not yet staged. *)
type feed_state = {
  feed : Ctlog.Fetch.feed;
  lo : int;
  hi : int;
  mutable mark : int;
  mutable next : int;
  mutable pending : (Store.Db.record * string) list;  (* newest first *)
  mutable staged_count : int;
  mutable last_cov : Ctlog.Fetch.coverage option;
  mutable degraded : bool;
}

let obs_lag =
  lazy
    (Obs.Registry.gauge
       ~help:"Entries published by the logs but not yet staged by ingest"
       "unicert_ingest_lag_entries")

let obs_ticks =
  lazy
    (Obs.Registry.counter ~help:"Ingest ticks processed"
       "unicert_monitord_ticks_total")

(* Stage one fetched item: analyze (Got) or record the fault
   (Undecodable), queue the durable record, and stage the service
   material derived from the row alone. *)
let stage_item service acc fs item =
  let record, rowstr =
    match (item : Ctlog.Fetch.item) with
    | Ctlog.Fetch.Got (index, entry) ->
        let row = Unicert.Pipeline.analyze_entry entry ~index in
        Unicert.Pipeline.add_index_entries acc row;
        Monitors.Service.stage_fields service ~id:index
          ~cns:(Unicert.Pipeline.row_cns row)
          ~sans:(Unicert.Pipeline.row_domains row)
          ~attrs:(Unicert.Pipeline.row_attrs row);
        let one = Unicert.Pipeline.fresh_acc () in
        Unicert.Pipeline.add_index_entries one row;
        List.iter
          (fun (ix, entries) ->
            List.iter
              (fun (key, ids) ->
                List.iter
                  (fun id -> Monitors.Service.stage_index service ~index:ix ~key ~id)
                  ids)
              entries)
          (Unicert.Pipeline.merge_accs [ one ]);
        ( Store.Db.Cert
            { index; der = entry.Ctlog.Dataset.cert.X509.Certificate.der },
          Unicert.Pipeline.encode_row row )
    | Ctlog.Fetch.Undecodable (index, der, error) ->
        ( Store.Db.Fault
            {
              index;
              class_ = Faults.Error.class_name error;
              detail = Faults.Error.detail error;
              der;
            },
          "F" )
  in
  fs.pending <- (record, rowstr) :: fs.pending;
  fs.staged_count <- fs.staged_count + 1

(* Stage a replayed committed row (restart path): service material
   only — the record is already durable. *)
let stage_replayed service acc row =
  let id = Unicert.Pipeline.row_index row in
  Unicert.Pipeline.add_index_entries acc row;
  Monitors.Service.stage_fields service ~id
    ~cns:(Unicert.Pipeline.row_cns row)
    ~sans:(Unicert.Pipeline.row_domains row)
    ~attrs:(Unicert.Pipeline.row_attrs row);
  let one = Unicert.Pipeline.fresh_acc () in
  Unicert.Pipeline.add_index_entries one row;
  List.iter
    (fun (ix, entries) ->
      List.iter
        (fun (key, ids) ->
          List.iter
            (fun i -> Monitors.Service.stage_index service ~index:ix ~key ~id:i)
            ids)
        entries)
    (Unicert.Pipeline.merge_accs [ one ])

(* --- the select-based stdin reader -------------------------------------

   input_line would restart silently across SIGTERM; polling keeps the
   shutdown latency bounded without threads. *)
let read_line_opt () =
  let buf = Buffer.create 64 in
  let b = Bytes.create 1 in
  let rec go () =
    if !stop_requested then None
    else
      match Unix.select [ Unix.stdin ] [] [] 0.2 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      | [], _, _ -> go ()
      | _ -> (
          match Unix.read Unix.stdin b 0 1 with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
          | 0 -> if Buffer.length buf > 0 then Some (Buffer.contents buf) else None
          | _ ->
              if Bytes.get b 0 = '\n' then Some (Buffer.contents buf)
              else begin
                Buffer.add_char buf (Bytes.get b 0);
                go ()
              end)
  in
  go ()

let run scale seed (fault : Fault_cli.t) ticks publish_per_tick commit_every
    respond_fault_rate client metrics progress no_progress =
  if progress then Obs.Progress.set_override (Some true)
  else if no_progress then Obs.Progress.set_override (Some false);
  Fault_cli.set_metrics metrics;
  Sys.set_signal Sys.sigterm
    (Sys.Signal_handle (fun _ -> stop_requested := true));
  let dir =
    match fault.Fault_cli.store with
    | Some d -> d
    | None ->
        Printf.eprintf "error: --store DIR is required\n";
        Fault_cli.exit_via 2
  in
  if publish_per_tick <= 0 then begin
    Printf.eprintf "error: --publish-per-tick must be >= 1\n";
    Fault_cli.exit_via 2
  end;
  if commit_every <= 0 then begin
    Printf.eprintf "error: --commit-every must be >= 1\n";
    Fault_cli.exit_via 2
  end;
  Fault_cli.guard @@ fun () ->
  let policy = fault.Fault_cli.policy in
  let cfg =
    let base = Option.value fault.Fault_cli.fetch ~default:Ctlog.Fetch.default_cfg in
    { base with
      Ctlog.Fetch.breaker_threshold = policy.Faults.Policy.breaker_threshold }
  in
  let jobs = fault.Fault_cli.jobs in
  let mutator = Fault_cli.mutator ~default_seed:seed fault in
  let drop = fault.Fault_cli.drop in
  let lints = Unicert.Pipeline.lints_signature () in
  let fingerprint =
    Unicert.Pipeline.store_fingerprint ~mutator ~drop
      ~source:(Unicert.Pipeline.Fetch cfg)
  in
  Store.Db.prewarm ();
  Ctlog.Fetch.prewarm ();
  Monitors.Service.prewarm ();
  Net.Listener.prewarm ();
  ignore (Lazy.force obs_lag);
  let db = Store.Db.create ~dir ~scale ~seed ~fingerprint in
  Store.Db.recover db ~lints;
  let service = Monitors.Service.create () in
  let acc = Unicert.Pipeline.fresh_acc () in
  (* Cursor files live beside the data; they are not data-shaped, so
     fsck leaves them alone. *)
  let feeds =
    Ctlog.Fetch.feeds ?mutator ~drop ~checkpoint:(Filename.concat dir "cursors")
      ~scale ~seed cfg
  in
  let states =
    List.map
      (fun feed ->
        let lo, hi = Ctlog.Fetch.feed_range feed in
        {
          feed;
          lo;
          hi;
          mark = lo;
          next = lo;
          pending = [];
          staged_count = 0;
          last_cov = None;
          degraded = false;
        })
      feeds
  in
  (* Restart: marks = the contiguous committed prefix of each feed's
     range; everything below a mark replays into the serving state. *)
  let committed_spans =
    List.map fst (Store.Db.spans db)
    |> List.sort (fun (a : Store.Manifest.seg) b ->
           compare a.Store.Manifest.lo b.Store.Manifest.lo)
  in
  List.iter
    (fun fs ->
      List.iter
        (fun (s : Store.Manifest.seg) ->
          if s.Store.Manifest.lo <= fs.mark && s.Store.Manifest.hi > fs.mark
             && s.Store.Manifest.lo < fs.hi then
            fs.mark <- min s.Store.Manifest.hi fs.hi)
        committed_spans;
      fs.next <- fs.mark)
    states;
  let mark_of index =
    match List.find_opt (fun fs -> index >= fs.lo && index < fs.hi) states with
    | Some fs -> fs.mark
    | None -> 0
  in
  let n_committed = ref 0 in
  Store.Db.iter_pairs db (fun recd rowstr ->
      let index = Store.Db.index_of_record recd in
      if index < mark_of index then begin
        incr n_committed;
        match recd with
        | Store.Db.Fault _ -> ()
        | Store.Db.Cert _ -> (
            match Unicert.Pipeline.decode_row rowstr with
            | Error e ->
                raise
                  (Store.Db.Store_error
                     (Printf.sprintf
                        "stored row %d undecodable (%s); run `unicert-store \
                         fsck`"
                        index e))
            | Ok row -> stage_replayed service acc row)
      end);
  Monitors.Service.commit service ~upto:!n_committed;
  (* Republish at least the trusted STH before the first poll — a
     smaller published head reads as a shrinking tree (split view). *)
  List.iter
    (fun fs ->
      match Ctlog.Fetch.feed_trusted fs.feed with
      | Some n -> Ctlog.Fetch.feed_publish fs.feed n
      | None -> ())
    states;
  let manifest_segments = ref (Store.Db.spans db) in
  let tick_no = ref 0 in
  let do_tick () =
    incr tick_no;
    Obs.Counter.inc (Lazy.force obs_ticks);
    List.iter
      (fun fs ->
        Ctlog.Fetch.feed_publish fs.feed
          (Ctlog.Fetch.feed_published fs.feed + publish_per_tick))
      states;
    let sessions =
      Par.run ~jobs
        (List.map (fun fs () -> Ctlog.Fetch.poll fs.feed) states)
    in
    List.iter2
      (fun fs (s : Ctlog.Fetch.session) ->
        let cov = s.Ctlog.Fetch.s_cov in
        fs.last_cov <- Some cov;
        if
          cov.Ctlog.Fetch.abandoned <> None
          || cov.Ctlog.Fetch.split_view
          || cov.Ctlog.Fetch.page_gaps > 0
        then fs.degraded <- true;
        List.iter
          (fun item ->
            let index = Ctlog.Fetch.item_index item in
            if index >= fs.next then begin
              stage_item service acc fs item;
              fs.next <- index + 1
            end)
          (Ctlog.Fetch.items_of_session s))
      states sessions;
    let published =
      List.fold_left
        (fun a fs -> a + Ctlog.Fetch.feed_published fs.feed)
        0 states
    in
    let staged = List.fold_left (fun a fs -> a + fs.staged_count) 0 states in
    Obs.Gauge.set (Lazy.force obs_lag)
      (float_of_int (max 0 (published - staged - !n_committed)))
  in
  let do_commit () =
    let fresh =
      List.filter_map
        (fun fs ->
          match List.rev fs.pending with
          | [] -> None
          | items ->
              let last =
                List.fold_left
                  (fun a (r, _) -> max a (Store.Db.index_of_record r))
                  (fs.mark - 1) items
              in
              (* When this log has delivered (or quarantined) its whole
                 partition, the span runs to the partition end so
                 dropped tail indices read as covered holes. *)
              let all_in =
                match fs.last_cov with
                | Some c ->
                    c.Ctlog.Fetch.delivered + c.Ctlog.Fetch.quarantined
                    >= c.Ctlog.Fetch.expected
                    && Ctlog.Fetch.feed_published fs.feed
                       >= Ctlog.Fetch.feed_goal fs.feed
                | None -> false
              in
              let hi = if all_in then fs.hi else last + 1 in
              let pw = Store.Db.start_span db ~lints ~lo:fs.mark ~hi in
              (match
                 List.iter
                   (fun (record, row) -> Store.Db.append pw record ~row)
                   items
               with
              | () -> ()
              | exception e ->
                  Store.Db.close_noerr pw;
                  raise e);
              let pair = Store.Db.finish_span pw in
              fs.mark <- hi;
              fs.next <- max fs.next hi;
              n_committed := !n_committed + List.length items;
              fs.pending <- [];
              Some pair)
        states
    in
    if fresh <> [] || !tick_no = 0 then begin
      let pairs =
        List.sort
          (fun ((a : Store.Manifest.seg), _) (b, _) ->
            compare a.Store.Manifest.lo b.Store.Manifest.lo)
          (!manifest_segments @ fresh)
      in
      manifest_segments := pairs;
      let indexes =
        Unicert.Pipeline.save_indexes db (Unicert.Pipeline.merge_accs [ acc ])
      in
      let state =
        if List.for_all (fun fs -> fs.mark >= fs.hi) states then `Complete
        else `Building
      in
      let man : Store.Manifest.t =
        {
          state;
          lints;
          segments = List.map fst pairs;
          rows = List.map snd pairs;
          indexes;
          meta = [];
        }
      in
      Store.Db.commit db man
    end;
    Monitors.Service.commit service ~upto:!n_committed
  in
  let respond_plan =
    if respond_fault_rate <= 0.0 then None
    else
      Some
        {
          Net.Fault.default_plan with
          Net.Fault.seed =
            (match cfg.Ctlog.Fetch.net_seed with
            | Some s -> s lxor 0x51
            | None -> seed lxor 0x51);
          rate = respond_fault_rate;
          kinds = [ Net.Fault.Truncate; Net.Fault.Corrupt_body; Net.Fault.Reset ];
        }
  in
  let listener =
    Net.Listener.create ?plan:respond_plan ~seal:Ctlog.Wire.seal
      (fun ~client:_ line -> Monitors.Service.respond service line)
  in
  let out body =
    print_string body;
    flush stdout
  in
  let seq = ref 0 in
  let handle line =
    let line = String.trim line in
    if line = "" then ()
    else
      match line with
      | "tick" ->
          do_tick ();
          if !tick_no mod commit_every = 0 then do_commit ();
          out
            (Ctlog.Wire.seal
               [ Printf.sprintf "tick %d committed=%d staged=%d" !tick_no
                   !n_committed
                   (List.fold_left (fun a fs -> a + fs.staged_count) 0 states)
               ])
      | "commit" ->
          do_commit ();
          out (Ctlog.Wire.seal [ Printf.sprintf "committed %d" !n_committed ])
      | _ ->
          (* Query lines go through the listener: sealed framing plus
             the (optional) seeded response-fault plan — clients
             validate the seal and retry. *)
          incr seq;
          out (Net.Listener.serve listener ~client ~seq:!seq line)
  in
  for _ = 1 to ticks do
    if not !stop_requested then begin
      do_tick ();
      if !tick_no mod commit_every = 0 then do_commit ()
    end
  done;
  let rec serve_loop () =
    if !stop_requested then ()
    else
      match read_line_opt () with
      | None -> ()
      | Some line when String.trim line = "quit" ->
          out (Ctlog.Wire.seal [ "bye" ])
      | Some line ->
          handle line;
          serve_loop ()
  in
  serve_loop ();
  (* Graceful shutdown: land and commit everything staged, then exit 0
     — degraded coverage (abandoned log, split view, page gaps) exits
     4; being merely mid-ingest does not. *)
  do_commit ();
  let degraded = List.exists (fun fs -> fs.degraded) states in
  if degraded then
    Printf.eprintf "warning: degraded coverage: not every log delivered fully\n";
  Fault_cli.exit_via (if degraded then 4 else 0)

let scale =
  Arg.(value & opt int Ctlog.Dataset.default_scale
       & info [ "scale" ] ~doc:"Corpus size across all logs")

let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Corpus seed")

let ticks =
  Arg.(value & opt int 0 & info [ "ticks" ] ~docv:"N"
       ~doc:"Run N ingest ticks at startup before serving stdin")

let publish_per_tick =
  Arg.(value & opt int 64 & info [ "publish-per-tick" ] ~docv:"N"
       ~doc:"Entries each log publishes per tick")

let commit_every =
  Arg.(value & opt int 4 & info [ "commit-every" ] ~docv:"N"
       ~doc:"Commit the store manifest and the read snapshot every N ticks")

let respond_fault_rate =
  Arg.(value & opt float 0.0 & info [ "respond-fault-rate" ] ~docv:"RATE"
       ~doc:"Mangle this fraction of query responses (seeded, \
             deterministic): truncation, bit flips, drops")

let client =
  Arg.(value & opt string "cli" & info [ "client" ] ~docv:"NAME"
       ~doc:"Client name keying the response-fault stream")

let metrics =
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE"
       ~doc:"Write collected telemetry at exit: Prometheus text, or JSON \
             when FILE ends in .json")

let progress =
  Arg.(value & flag & info [ "progress" ] ~doc:"Force progress reporting on")

let no_progress =
  Arg.(value & flag & info [ "no-progress" ] ~doc:"Force progress reporting off")

let cmd =
  let doc =
    "continuously monitor simulated CT logs and serve a crt.sh-style query API"
  in
  Cmd.v (Cmd.info "unicert-monitord" ~doc)
    Term.(const run $ scale $ seed $ Fault_cli.term $ ticks
          $ publish_per_tick $ commit_every $ respond_fault_rate $ client
          $ metrics $ progress $ no_progress)

let () = exit (Cmd.eval cmd)
