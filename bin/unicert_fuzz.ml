(* unicert-fuzz: the coverage-guided differential fuzzing campaign.

   run      — execute a campaign, write findings JSONL
   minimize — delta-debug cluster exemplars from a findings file
   report   — render the cluster table from a findings file

   Exit codes follow the shared funnel: 0 clean, 2 unusable inputs
   (bad flags, corrupt checkpoint), 3 the campaign aborted on its
   wall-clock budget, 4 the campaign completed but one or more models
   ran degraded (breaker-threshold crashes). *)

open Cmdliner

let write_findings path findings =
  try
    Fuzz.Findings.write path findings;
    0
  with Sys_error msg ->
    Printf.eprintf "error: cannot write findings: %s\n" msg;
    1

let summarize ppf (t : Fuzz.Campaign.t) =
  Format.fprintf ppf
    "campaign: %d executions in %d rounds, %d signatures, corpus %d, %d \
     findings@."
    t.Fuzz.Campaign.executions t.Fuzz.Campaign.rounds
    t.Fuzz.Campaign.signatures t.Fuzz.Campaign.corpus_size
    (List.length t.Fuzz.Campaign.findings);
  (match t.Fuzz.Campaign.first_disagreement with
  | Some e -> Format.fprintf ppf "first disagreement at execution %d@." e
  | None -> Format.fprintf ppf "no disagreement found@.");
  Fuzz.Findings.report ppf t.Fuzz.Campaign.findings

let run budget seed jobs round_size timeout max_seconds breaker_threshold
    checkpoint resume findings_file minimize fault_models fault_hang metrics
    trace =
  Fault_cli.set_metrics metrics;
  (match trace with
  | None -> ()
  | Some file -> Obs.Trace.enable ~file ());
  let mode = if fault_hang then Faults.Injector.Hang else Faults.Injector.Crash in
  Fault_cli.arm_specs ~flag:"--fault-model" ~prefix:"model:" ~mode fault_models;
  let cfg =
    { Fuzz.Campaign.default_config with
      Fuzz.Campaign.seed; budget; jobs; round_size; timeout;
      max_seconds; breaker_threshold; checkpoint; resume;
      minimize_findings = minimize }
  in
  let t = Fault_cli.guard (fun () -> Fuzz.Campaign.run cfg) in
  let io_code =
    match findings_file with
    | None -> 0
    | Some path -> write_findings path t.Fuzz.Campaign.findings
  in
  summarize Format.std_formatter t;
  Format.pp_print_flush Format.std_formatter ();
  let code =
    match t.Fuzz.Campaign.status with
    | Fuzz.Campaign.Wall_abort elapsed ->
        Printf.eprintf
          "error: campaign aborted: wall-clock budget exhausted after %.3fs \
           (%d of %d executions)\n"
          elapsed t.Fuzz.Campaign.executions budget;
        3
    | Fuzz.Campaign.Completed ->
        if t.Fuzz.Campaign.degraded <> [] then begin
          Printf.eprintf "warning: degraded models during the campaign: %s\n"
            (String.concat ", "
               (List.map
                  (fun (m, c) -> Printf.sprintf "%s (%d crashes)" m c)
                  t.Fuzz.Campaign.degraded));
          4
        end
        else 0
  in
  Fault_cli.exit_via (Faults.Exitcode.worst code io_code)

let load_findings path =
  match Fuzz.Findings.read path with
  | Ok fs -> fs
  | Error msg ->
      Printf.eprintf "error: %s\n" msg;
      Fault_cli.exit_via 2
  | exception Sys_error msg ->
      Printf.eprintf "error: %s\n" msg;
      Fault_cli.exit_via 2

let minimize_cmd findings_file out corpus_dir breaker_threshold =
  let findings = load_findings findings_file in
  let clusters = Fuzz.Findings.clusters findings in
  let minimized =
    List.map
      (fun (cluster, _, _, (ex : Fuzz.Findings.finding)) ->
        let min_der =
          Fuzz.Minimize.minimize ~threshold:breaker_threshold ex.Fuzz.Findings.der
        in
        Printf.printf "%s: %d -> %d bytes\n" cluster
          (String.length ex.Fuzz.Findings.der)
          (String.length min_der);
        (cluster, min_der))
      clusters
  in
  (* only the exemplar line of each cluster carries the minimized
     bytes, keeping the file growth bounded *)
  let exemplars =
    List.map (fun (c, _, _, (ex : Fuzz.Findings.finding)) -> (c, ex.Fuzz.Findings.exec)) clusters
  in
  let findings' =
    List.map
      (fun (f : Fuzz.Findings.finding) ->
        match List.assoc_opt f.Fuzz.Findings.cluster minimized with
        | Some min_der
          when List.mem (f.Fuzz.Findings.cluster, f.Fuzz.Findings.exec) exemplars ->
            { f with Fuzz.Findings.min_der = Some min_der }
        | _ -> f)
      findings
  in
  let code = write_findings (Option.value ~default:findings_file out) findings' in
  (match corpus_dir with
  | None -> ()
  | Some dir ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      List.iter
        (fun (cluster, min_der) ->
          match X509.Certificate.parse ~config:Asn1.Value.lenient min_der with
          | Ok cert ->
              let oc = open_out (Filename.concat dir (cluster ^ ".pem")) in
              output_string oc (X509.Certificate.to_pem cert);
              close_out oc
          | Error _ ->
              (* byte mutants may not re-parse; keep them as raw DER *)
              let oc = open_out (Filename.concat dir (cluster ^ ".der")) in
              output_string oc min_der;
              close_out oc)
        minimized);
  Fault_cli.exit_via code

let report_cmd findings_file =
  let findings = load_findings findings_file in
  Fuzz.Findings.report Format.std_formatter findings;
  Format.pp_print_flush Format.std_formatter ();
  Fault_cli.exit_via 0

let budget =
  Arg.(value & opt int 512 & info [ "budget" ] ~docv:"N"
       ~doc:"Total candidate executions")
let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Campaign seed")
let jobs =
  Arg.(value & opt int (Par.default_jobs ()) & info [ "jobs" ] ~docv:"N"
       ~doc:"Worker domains per round (findings are identical for any value)")
let round_size =
  Arg.(value & opt int 64 & info [ "round" ] ~docv:"N"
       ~doc:"Candidates per coverage round")
let timeout =
  Arg.(value & opt float 0. & info [ "timeout" ] ~docv:"SECONDS"
       ~doc:"Per-candidate watchdog; 0 disables. A timeout that fires exempts \
             the run from the byte-identity contract")
let max_seconds =
  Arg.(value & opt (some float) None & info [ "max-seconds" ] ~docv:"SECONDS"
       ~doc:"Wall-clock budget; exceeding it aborts the campaign (exit 3)")
let breaker_threshold =
  Arg.(value & opt int Faults.Breaker.default_threshold
       & info [ "breaker-threshold" ] ~docv:"N"
       ~doc:"Consecutive crashes before a model's circuit breaker opens")
let checkpoint =
  Arg.(value & opt (some string) None & info [ "checkpoint" ] ~docv:"FILE"
       ~doc:"Save campaign state after every round")
let resume =
  Arg.(value & flag & info [ "resume" ] ~doc:"Resume from --checkpoint")
let findings_file =
  Arg.(value & opt (some string) None & info [ "findings" ] ~docv:"FILE"
       ~doc:"Write findings JSONL (byte-identical for a fixed seed/budget \
             across --jobs)")
let minimize_flag =
  Arg.(value & flag & info [ "minimize" ]
       ~doc:"Minimize every finding before writing")
let fault_models =
  Arg.(value & opt_all string [] & info [ "fault-model" ] ~docv:"NAME:EVERY"
       ~doc:"Inject a crash into parser model NAME every EVERY probes")
let fault_hang =
  Arg.(value & flag & info [ "fault-hang" ]
       ~doc:"Injected faults hang (bounded busy loop) instead of crashing")
let metrics =
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE"
       ~doc:"Write collected telemetry at exit")
let trace =
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
       ~doc:"Record a Chrome-trace timeline")
let findings_in =
  Arg.(required & opt (some string) None & info [ "findings" ] ~docv:"FILE"
       ~doc:"Findings JSONL produced by run")
let out =
  Arg.(value & opt (some string) None & info [ "out" ] ~docv:"FILE"
       ~doc:"Output findings file (default: rewrite --findings in place)")
let corpus_dir =
  Arg.(value & opt (some string) None & info [ "corpus-dir" ] ~docv:"DIR"
       ~doc:"Write one minimized reproducer per cluster (PEM, or raw .der \
             when the reproducer no longer parses)")

let run_c =
  Cmd.v (Cmd.info "run" ~doc:"execute a fuzzing campaign")
    Term.(const run $ budget $ seed $ jobs $ round_size $ timeout $ max_seconds
          $ breaker_threshold $ checkpoint $ resume $ findings_file
          $ minimize_flag $ fault_models $ fault_hang $ metrics $ trace)

let minimize_c =
  Cmd.v (Cmd.info "minimize" ~doc:"minimize cluster exemplars from a findings file")
    Term.(const minimize_cmd $ findings_in $ out $ corpus_dir $ breaker_threshold)

let report_c =
  Cmd.v (Cmd.info "report" ~doc:"render the cluster table from a findings file")
    Term.(const report_cmd $ findings_in)

let cmd =
  Cmd.group
    (Cmd.info "unicert-fuzz"
       ~doc:"coverage-guided differential fuzzing over string types, encodings, and IDNA edge cases")
    [ run_c; minimize_c; report_c ]

let () = exit (Cmd.eval cmd)
